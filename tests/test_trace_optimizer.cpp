// Trace-driven placement optimizer tests: budget discipline, improvement
// guarantees, comparison against the write-aware heuristic, and the
// delta-replay selector's parity with the exhaustive full-replay greedy.
#include <gtest/gtest.h>

#include "harness/registry.hpp"
#include "obs/metrics.hpp"
#include "placement/trace_optimizer.hpp"
#include "placement/write_aware.hpp"
#include "prof/data_profile.hpp"
#include "replay/recording.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

PhaseRecording record(const std::string& app, int threads = 36) {
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  TraceCapture capture(sys);
  AppConfig cfg;
  cfg.threads = threads;
  AppContext ctx(sys, cfg);
  (void)lookup_app(app).run(ctx);
  return capture.finish();
}

auto factory() {
  return [] { return MemorySystem(SystemConfig::testbed(Mode::kUncachedNvm)); };
}

TEST(TraceOptimizer, ImprovesScalapackWithinBudget) {
  const auto rec = record("scalapack");
  const std::uint64_t budget =
      SystemConfig::testbed(Mode::kUncachedNvm).dram.capacity * 35 / 100;
  const auto r = optimize_placement(rec, budget, factory());
  EXPECT_GT(r.baseline_runtime, 0.0);
  EXPECT_GT(r.speedup(), 2.0);
  EXPECT_LE(r.dram_bytes, budget);
  EXPECT_FALSE(r.steps.empty());
  // the step runtimes are monotone decreasing
  double prev = r.baseline_runtime;
  for (const auto& [name, t] : r.steps) {
    EXPECT_LT(t, prev) << name;
    prev = t;
  }
  EXPECT_DOUBLE_EQ(prev, r.optimized_runtime);
}

TEST(TraceOptimizer, NeverWorseThanWriteAwareHeuristic) {
  for (const std::string app : {"scalapack", "ft"}) {
    const auto rec = record(app);
    const std::uint64_t budget =
        SystemConfig::testbed(Mode::kUncachedNvm).dram.capacity * 35 / 100;

    // heuristic plan from a profiling run
    MemorySystem prof_sys(SystemConfig::testbed(Mode::kUncachedNvm));
    AppConfig cfg;
    cfg.threads = 36;
    AppContext ctx(prof_sys, cfg);
    (void)lookup_app(app).run(ctx);
    const auto heuristic =
        write_aware_plan(collect_data_profile(prof_sys), budget);
    auto sys = factory()();
    const double heuristic_runtime = rec.replay(sys, &heuristic.plan);

    const auto optimized = optimize_placement(rec, budget, factory());
    EXPECT_LE(optimized.optimized_runtime, heuristic_runtime * 1.0001)
        << app;
  }
}

TEST(TraceOptimizer, ZeroBudgetReturnsBaseline) {
  const auto rec = record("laghos", 24);
  const auto r = optimize_placement(rec, 0, factory());
  EXPECT_EQ(r.dram_bytes, 0u);
  EXPECT_TRUE(r.steps.empty());
  EXPECT_DOUBLE_EQ(r.optimized_runtime, r.baseline_runtime);
}

TEST(TraceOptimizer, ComputeBoundAppGainsLittle) {
  const auto rec = record("hacc", 24);
  const auto r = optimize_placement(
      rec, SystemConfig::testbed(Mode::kUncachedNvm).dram.capacity,
      factory());
  EXPECT_LT(r.speedup(), 1.05);  // hacc is compute-bound: nothing to win
}

TEST(TraceOptimizer, FtGainsFromPlacingTheFftArrays) {
  // FT's write-throttled arrays in DRAM should recover most of the 12x.
  const auto rec = record("ft");
  const auto r = optimize_placement(
      rec, SystemConfig::testbed(Mode::kUncachedNvm).dram.capacity * 80 / 100,
      factory());
  EXPECT_GT(r.speedup(), 4.0);
}

void expect_identical(const TraceOptimizerResult& a,
                      const TraceOptimizerResult& b, const std::string& tag) {
  EXPECT_EQ(a.baseline_runtime, b.baseline_runtime) << tag;
  EXPECT_EQ(a.optimized_runtime, b.optimized_runtime) << tag;
  EXPECT_EQ(a.dram_bytes, b.dram_bytes) << tag;
  ASSERT_EQ(a.steps.size(), b.steps.size()) << tag;
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].first, b.steps[i].first) << tag << " step " << i;
    EXPECT_EQ(a.steps[i].second, b.steps[i].second) << tag << " step " << i;
  }
  ASSERT_EQ(a.plan.size(), b.plan.size()) << tag;
  for (const auto& [name, p] : a.plan.entries())
    EXPECT_EQ(b.plan.lookup(name), p) << tag << " buffer " << name;
}

TEST(TraceOptimizer, ParityWithFullReplayAllApps) {
  // The tentpole invariant: the delta-replay CELF selector must produce
  // the same plan, promotion order and (bit-identical) runtimes as the
  // exhaustive full-replay greedy — for every registered application.
  const std::uint64_t budget =
      SystemConfig::testbed(Mode::kUncachedNvm).dram.capacity * 35 / 100;
  for (const auto& app : app_names()) {
    const auto rec = record(app);
    TraceOptimizerOptions opt;
    opt.jobs = 4;
    const auto fast = optimize_placement(rec, budget, factory(), opt);
    const auto slow = optimize_placement_full_replay(rec, budget, factory());
    expect_identical(fast, slow, app);
    // and the delta path really is incremental: no full replays beyond
    // what the selector itself never needs in uncached mode.
    EXPECT_EQ(fast.stats.full_replays, 0u) << app;
    EXPECT_GT(fast.stats.evals, 0u) << app;
  }
}

TEST(TraceOptimizer, MemoryModeFallsBackToFullReplayWithParity) {
  // kCachedNvm carries DRAM-cache state across phases, so the evaluator
  // cannot delta-replay; it must fall back to full (memoized) replays and
  // still agree with the exhaustive reference.
  const std::uint64_t budget =
      SystemConfig::testbed(Mode::kCachedNvm).dram.capacity * 35 / 100;
  const auto cached = [] {
    return MemorySystem(SystemConfig::testbed(Mode::kCachedNvm));
  };
  for (const std::string app : {"hypre", "scalapack"}) {
    const auto rec = record(app);
    TraceOptimizerOptions opt;
    opt.jobs = 2;
    const auto fast = optimize_placement(rec, budget, cached, opt);
    const auto slow = optimize_placement_full_replay(rec, budget, cached);
    expect_identical(fast, slow, app);
    EXPECT_GT(fast.stats.full_replays, 0u) << app;
    // Placement directives do not change Memory-mode routing, so no
    // promotion can show a gain.
    EXPECT_TRUE(fast.steps.empty()) << app;
    EXPECT_EQ(fast.optimized_runtime, fast.baseline_runtime) << app;
  }
}

TEST(TraceOptimizer, DeterministicAcrossWorkerCounts) {
  const auto rec = record("scalapack");
  const std::uint64_t budget =
      SystemConfig::testbed(Mode::kUncachedNvm).dram.capacity * 35 / 100;
  TraceOptimizerOptions serial;
  serial.jobs = 1;
  TraceOptimizerOptions wide;
  wide.jobs = 4;
  const auto a = optimize_placement(rec, budget, factory(), serial);
  const auto b = optimize_placement(rec, budget, factory(), wide);
  const auto c = optimize_placement(rec, budget, factory(), wide);
  expect_identical(a, b, "jobs=1 vs jobs=4");
  expect_identical(b, c, "jobs=4 repeated");
  // The work done is deterministic too, not just the result.
  EXPECT_EQ(a.stats.evals, b.stats.evals);
  EXPECT_EQ(b.stats.evals, c.stats.evals);
}

TEST(TraceOptimizer, EqualGainsBreakTiesByBufferName) {
  // Two buffers with byte-identical phases (so exactly equal promotion
  // gains), registered in anti-lexicographic order: both selectors must
  // promote the lexicographically smaller name first.
  PhaseRecording rec;
  rec.buffers.push_back({"bbb", 8 * MiB, Placement::kAuto});
  rec.buffers.push_back({"aaa", 8 * MiB, Placement::kAuto});
  for (BufferId b : {BufferId{0}, BufferId{1}}) {
    rec.phases.push_back(PhaseBuilder(b == 0 ? "pb" : "pa")
                             .threads(4)
                             .flops(1e6)
                             .stream(seq_write(b, 64 * MiB))
                             .stream(seq_read(b, 16 * MiB))
                             .build());
  }
  const std::uint64_t budget = 8 * MiB;  // room for exactly one promotion
  const auto fast = optimize_placement(rec, budget, factory());
  const auto slow = optimize_placement_full_replay(rec, budget, factory());
  ASSERT_EQ(fast.steps.size(), 1u);
  EXPECT_EQ(fast.steps[0].first, "aaa");
  ASSERT_EQ(slow.steps.size(), 1u);
  EXPECT_EQ(slow.steps[0].first, "aaa");
  expect_identical(fast, slow, "tie-break");
}

TEST(TraceOptimizer, PublishesTelemetryGauges) {
  const auto rec = record("ft", 24);
  MetricsRegistry metrics;
  TraceOptimizerOptions opt;
  opt.telemetry = &metrics;
  const auto r = optimize_placement(
      rec, SystemConfig::testbed(Mode::kUncachedNvm).dram.capacity * 35 / 100,
      factory(), opt);
  const Metric* evals = metrics.find("placement.evals");
  ASSERT_NE(evals, nullptr);
  EXPECT_EQ(evals->value, static_cast<double>(r.stats.evals));
  const Metric* hits = metrics.find("placement.phase_cache.hits");
  const Metric* misses = metrics.find("placement.phase_cache.misses");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misses, nullptr);
  EXPECT_EQ(hits->value + misses->value,
            static_cast<double>(r.stats.phase_cache.hits +
                                r.stats.phase_cache.misses));
}

}  // namespace
}  // namespace nvms
