// Trace-driven placement optimizer tests: budget discipline, improvement
// guarantees, and comparison against the write-aware heuristic.
#include <gtest/gtest.h>

#include "harness/registry.hpp"
#include "placement/trace_optimizer.hpp"
#include "placement/write_aware.hpp"
#include "prof/data_profile.hpp"
#include "replay/recording.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

PhaseRecording record(const std::string& app, int threads = 36) {
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  TraceCapture capture(sys);
  AppConfig cfg;
  cfg.threads = threads;
  AppContext ctx(sys, cfg);
  (void)lookup_app(app).run(ctx);
  return capture.finish();
}

auto factory() {
  return [] { return MemorySystem(SystemConfig::testbed(Mode::kUncachedNvm)); };
}

TEST(TraceOptimizer, ImprovesScalapackWithinBudget) {
  const auto rec = record("scalapack");
  const std::uint64_t budget =
      SystemConfig::testbed(Mode::kUncachedNvm).dram.capacity * 35 / 100;
  const auto r = optimize_placement(rec, budget, factory());
  EXPECT_GT(r.baseline_runtime, 0.0);
  EXPECT_GT(r.speedup(), 2.0);
  EXPECT_LE(r.dram_bytes, budget);
  EXPECT_FALSE(r.steps.empty());
  // the step runtimes are monotone decreasing
  double prev = r.baseline_runtime;
  for (const auto& [name, t] : r.steps) {
    EXPECT_LT(t, prev) << name;
    prev = t;
  }
  EXPECT_DOUBLE_EQ(prev, r.optimized_runtime);
}

TEST(TraceOptimizer, NeverWorseThanWriteAwareHeuristic) {
  for (const std::string app : {"scalapack", "ft"}) {
    const auto rec = record(app);
    const std::uint64_t budget =
        SystemConfig::testbed(Mode::kUncachedNvm).dram.capacity * 35 / 100;

    // heuristic plan from a profiling run
    MemorySystem prof_sys(SystemConfig::testbed(Mode::kUncachedNvm));
    AppConfig cfg;
    cfg.threads = 36;
    AppContext ctx(prof_sys, cfg);
    (void)lookup_app(app).run(ctx);
    const auto heuristic =
        write_aware_plan(collect_data_profile(prof_sys), budget);
    auto sys = factory()();
    const double heuristic_runtime = rec.replay(sys, &heuristic.plan);

    const auto optimized = optimize_placement(rec, budget, factory());
    EXPECT_LE(optimized.optimized_runtime, heuristic_runtime * 1.0001)
        << app;
  }
}

TEST(TraceOptimizer, ZeroBudgetReturnsBaseline) {
  const auto rec = record("laghos", 24);
  const auto r = optimize_placement(rec, 0, factory());
  EXPECT_EQ(r.dram_bytes, 0u);
  EXPECT_TRUE(r.steps.empty());
  EXPECT_DOUBLE_EQ(r.optimized_runtime, r.baseline_runtime);
}

TEST(TraceOptimizer, ComputeBoundAppGainsLittle) {
  const auto rec = record("hacc", 24);
  const auto r = optimize_placement(
      rec, SystemConfig::testbed(Mode::kUncachedNvm).dram.capacity,
      factory());
  EXPECT_LT(r.speedup(), 1.05);  // hacc is compute-bound: nothing to win
}

TEST(TraceOptimizer, FtGainsFromPlacingTheFftArrays) {
  // FT's write-throttled arrays in DRAM should recover most of the 12x.
  const auto rec = record("ft");
  const auto r = optimize_placement(
      rec, SystemConfig::testbed(Mode::kUncachedNvm).dram.capacity * 80 / 100,
      factory());
  EXPECT_GT(r.speedup(), 4.0);
}

}  // namespace
}  // namespace nvms
