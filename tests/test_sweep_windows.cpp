// Tests for the structured sweep runner/CSV export (serial and parallel),
// the experiment executor, and the fixed-window counter re-binning.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/executor.hpp"
#include "harness/sweep.hpp"
#include "prof/windows.hpp"
#include "simcore/error.hpp"

namespace nvms {
namespace {

// ---------- sweep -----------------------------------------------------------

TEST(Sweep, CartesianProductOrderAndContent) {
  SweepSpec spec;
  spec.app = "hacc";
  spec.modes = {Mode::kDramOnly, Mode::kUncachedNvm};
  spec.threads = {12, 36};
  spec.scales = {1.0};
  const auto rows = run_sweep(spec).rows;
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].mode, Mode::kDramOnly);
  EXPECT_EQ(rows[0].threads, 12);
  EXPECT_EQ(rows[1].threads, 36);
  EXPECT_EQ(rows[2].mode, Mode::kUncachedNvm);
  for (const auto& r : rows) EXPECT_GT(r.result.runtime, 0.0);
}

TEST(Sweep, OversizedConfigurationsAreSkippedNotFatal) {
  SweepSpec spec;
  spec.app = "hypre";
  spec.modes = {Mode::kDramOnly, Mode::kCachedNvm};
  spec.threads = {36};
  spec.scales = {1.0, 3.0};  // 3.0x exceeds DRAM but fits cached-NVM
  const auto result = run_sweep(spec);
  int dram_rows = 0;
  int cached_rows = 0;
  for (const auto& r : result.rows) {
    (r.mode == Mode::kDramOnly ? dram_rows : cached_rows) += 1;
  }
  EXPECT_EQ(dram_rows, 1);    // only the 1.0x fits
  EXPECT_EQ(cached_rows, 2);  // both fit behind the cache
  // the dropped configuration is reported, not silent
  ASSERT_EQ(result.skipped.size(), 1u);
  EXPECT_EQ(result.skipped[0].mode, Mode::kDramOnly);
  EXPECT_EQ(result.skipped[0].threads, 36);
  EXPECT_DOUBLE_EQ(result.skipped[0].scale, 3.0);
  EXPECT_FALSE(result.skipped[0].reason.empty());
  EXPECT_EQ(result.stats.skipped(), 1u);
}

TEST(Sweep, CsvShape) {
  SweepSpec spec;
  spec.app = "hacc";
  spec.modes = {Mode::kDramOnly};
  spec.threads = {24};
  spec.scales = {1.0};
  const auto csv = sweep_csv(run_sweep(spec));
  std::istringstream in(csv);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "mode,threads,scale,runtime_s,fom,fom_unit,higher_is_better,"
            "read_bw_gbs,write_bw_gbs,ipc,footprint_bytes");
  std::string row;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, row)));
  EXPECT_NE(row.find("dram-only,24,1,"), std::string::npos);
}

TEST(Sweep, Validation) {
  SweepSpec spec;  // empty app
  EXPECT_THROW(run_sweep(spec), ConfigError);
  spec.app = "nope";
  EXPECT_THROW(run_sweep(spec), ConfigError);
  spec.app = "hacc";
  spec.threads = {0};
  EXPECT_THROW(run_sweep(spec), ConfigError);
  spec.threads = {12};
  spec.jobs = -1;
  EXPECT_THROW(run_sweep(spec), ConfigError);
}

// The determinism contract of the tentpole: any worker count yields
// byte-identical CSVs because rows keep grid order and every task's seed
// is a pure function of (spec.seed, grid index).
TEST(Sweep, ParallelMatchesSerialByteForByte) {
  for (const char* app : {"hacc", "xsbench"}) {
    SweepSpec spec;
    spec.app = app;
    spec.modes = {Mode::kDramOnly, Mode::kCachedNvm, Mode::kUncachedNvm};
    spec.threads = {12, 24};
    spec.scales = {1.0};

    spec.jobs = 1;
    const auto serial = run_sweep(spec);
    spec.jobs = 4;
    const auto parallel = run_sweep(spec);

    ASSERT_EQ(serial.rows.size(), 6u) << app;
    EXPECT_EQ(sweep_csv(serial), sweep_csv(parallel)) << app;
    EXPECT_EQ(parallel.stats.jobs, 4);
  }
}

TEST(Sweep, StatsCoverTheWholeGrid) {
  SweepSpec spec;
  spec.app = "hacc";
  spec.modes = {Mode::kDramOnly, Mode::kUncachedNvm};
  spec.threads = {12, 24};
  spec.scales = {1.0};
  spec.jobs = 2;
  const auto result = run_sweep(spec);
  ASSERT_EQ(result.stats.tasks.size(),
            result.rows.size() + result.skipped.size());
  EXPECT_GT(result.stats.batch_wall_s, 0.0);
  EXPECT_GT(result.stats.total_task_s(), 0.0);
  EXPECT_GT(result.stats.worker_utilization(), 0.0);
  EXPECT_LE(result.stats.worker_utilization(), 1.0);
  for (std::size_t i = 0; i < result.stats.tasks.size(); ++i) {
    EXPECT_EQ(result.stats.tasks[i].index, i);
    EXPECT_GE(result.stats.tasks[i].wall_s, 0.0);
    EXPECT_FALSE(result.stats.tasks[i].label.empty());
  }
  // the timing export parses as one line per task plus a header
  const std::string csv = sweep_stats_csv(result);
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "task,label,worker,queue_wait_s,wall_s,skipped");
  std::size_t data_lines = 0;
  while (std::getline(in, line)) ++data_lines;
  EXPECT_EQ(data_lines, result.stats.tasks.size());
}

// ---------- executor --------------------------------------------------------

TEST(Executor, SeedDerivationIsPureAndSpreads) {
  EXPECT_EQ(derive_task_seed(7, 0), derive_task_seed(7, 0));
  EXPECT_NE(derive_task_seed(7, 0), derive_task_seed(7, 1));
  EXPECT_NE(derive_task_seed(7, 0), derive_task_seed(8, 0));
}

TEST(Executor, OutcomesKeepTaskOrder) {
  std::vector<ExperimentConfig> tasks;
  for (const int threads : {12, 24, 36}) {
    ExperimentConfig t;
    t.app = "hacc";
    t.sys = SystemConfig::testbed(Mode::kDramOnly);
    t.cfg.threads = threads;
    tasks.push_back(std::move(t));
  }
  ExecutorStats stats;
  const auto serial = run_experiments(tasks, 1, &stats);
  EXPECT_EQ(stats.jobs, 1);
  const auto parallel = run_experiments(tasks, 3);
  ASSERT_EQ(serial.size(), 3u);
  ASSERT_EQ(parallel.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(serial[i].skipped);
    EXPECT_DOUBLE_EQ(serial[i].result.runtime, parallel[i].result.runtime);
    EXPECT_DOUBLE_EQ(serial[i].result.checksum, parallel[i].result.checksum);
  }
}

TEST(Executor, UnknownAppFailsFastAndConfigErrorsPropagate) {
  std::vector<ExperimentConfig> tasks(1);
  tasks[0].app = "nope";
  tasks[0].sys = SystemConfig::testbed(Mode::kDramOnly);
  EXPECT_THROW(run_experiments(tasks, 2), ConfigError);

  tasks[0].app = "hacc";
  tasks[0].cfg.threads = 0;  // invalid: AppContext validation throws
  EXPECT_THROW(run_experiments(tasks, 2), ConfigError);
}

// ---------- windowed re-binning ---------------------------------------------

CounterSample mk_sample(const char* phase, double t0, double t1,
                        double insns) {
  CounterSample s;
  s.phase = phase;
  s.t0 = t0;
  s.t1 = t1;
  s.delta.instructions = insns;
  s.delta.cycles_active = 2 * insns;
  s.delta.imc_reads = insns / 10;
  return s;
}

TEST(Windows, SplitsProportionally) {
  // one phase spanning [0, 1) with 100 instructions, windows of 0.25s
  const auto out = rebin_windows({mk_sample("p", 0.0, 1.0, 100)}, 0.25);
  ASSERT_EQ(out.size(), 4u);
  for (const auto& w : out) {
    EXPECT_NEAR(w.delta.instructions, 25.0, 1e-9);
    EXPECT_NEAR(w.ipc(), 0.5, 1e-12);
  }
}

TEST(Windows, ConservesTotals) {
  std::vector<CounterSample> samples = {
      mk_sample("a", 0.0, 0.3, 30),
      mk_sample("b", 0.3, 0.95, 650),
      mk_sample("c", 0.95, 1.4, 45),
  };
  const auto out = rebin_windows(samples, 0.5);
  ASSERT_EQ(out.size(), 3u);
  double total = 0.0;
  for (const auto& w : out) total += w.delta.instructions;
  EXPECT_NEAR(total, 725.0, 1e-9);
  // window boundaries tile the span
  EXPECT_DOUBLE_EQ(out[0].t0, 0.0);
  EXPECT_DOUBLE_EQ(out[1].t0, 0.5);
  EXPECT_NEAR(out[2].t1, 1.4, 1e-12);
}

TEST(Windows, WindowLargerThanRunYieldsOneBin) {
  const auto out = rebin_windows({mk_sample("p", 0.0, 0.2, 10)}, 5.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].delta.instructions, 10.0, 1e-12);
}

TEST(Windows, ZeroDurationPhasesConserveCounts) {
  // Instantaneous phases still carry counter deltas (flop-proportional
  // instructions); re-binning must not drop them.
  std::vector<CounterSample> samples = {
      mk_sample("a", 0.0, 0.4, 40),
      mk_sample("sync", 0.4, 0.4, 7),   // zero duration, mid-trace
      mk_sample("b", 0.4, 1.0, 60),
      mk_sample("end", 1.0, 1.0, 5),    // zero duration at t_end
  };
  const auto out = rebin_windows(samples, 0.5);
  ASSERT_EQ(out.size(), 2u);
  double total = 0.0;
  for (const auto& w : out) total += w.delta.instructions;
  EXPECT_NEAR(total, 112.0, 1e-9);
  // window 0: all of a (40) + the sync marker (7) + b's [0.4,0.5) slice
  // (60 * 0.1/0.6 = 10); window 1: the rest of b (50) + the clamped
  // t_end marker (5).
  EXPECT_NEAR(out[0].delta.instructions, 57.0, 1e-9);
  EXPECT_NEAR(out[1].delta.instructions, 55.0, 1e-9);
}

TEST(Windows, AllZeroDurationYieldsNoWindows) {
  // A trace with no time extent has no windows to bin into.
  const auto out = rebin_windows({mk_sample("a", 0.5, 0.5, 10)}, 0.1);
  EXPECT_TRUE(out.empty());
}

TEST(Windows, NonIntegerWindowSplitSumsExactly) {
  // 1.0s of samples over 0.3s windows: 4 windows, last one 0.1s wide;
  // the proportional split must conserve the total.
  std::vector<CounterSample> samples = {
      mk_sample("a", 0.0, 0.45, 450),
      mk_sample("b", 0.45, 1.0, 550),
  };
  const auto out = rebin_windows(samples, 0.3);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_NEAR(out[3].t1 - out[3].t0, 0.1, 1e-12);
  double total = 0.0;
  for (const auto& w : out) total += w.delta.instructions;
  EXPECT_NEAR(total, 1000.0, 1e-9);
  // each full window of the uniform-rate trace carries ~300 instructions
  EXPECT_NEAR(out[0].delta.instructions, 300.0, 1e-9);
  EXPECT_NEAR(out[1].delta.instructions, 300.0, 1e-9);
  EXPECT_NEAR(out[2].delta.instructions, 300.0, 1e-9);
  EXPECT_NEAR(out[3].delta.instructions, 100.0, 1e-9);
}

TEST(Windows, EmptyAndInvalidInputs) {
  EXPECT_TRUE(rebin_windows({}, 0.1).empty());
  EXPECT_THROW(rebin_windows({mk_sample("p", 0, 1, 1)}, 0.0), ConfigError);
}

}  // namespace
}  // namespace nvms
