// Tests for the STREAM-like synthetic probe application.
#include <gtest/gtest.h>

#include "dwarfs/synth/stream.hpp"
#include "harness/registry.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

AppConfig cfg36() {
  AppConfig cfg;
  cfg.threads = 36;
  return cfg;
}

TEST(Stream, RegisteredAsExtraNotPaperApp) {
  const auto& paper = app_names();
  EXPECT_EQ(std::count(paper.begin(), paper.end(), "stream"), 0);
  const auto& extras = extra_app_names();
  EXPECT_EQ(std::count(extras.begin(), extras.end(), "stream"), 1);
  EXPECT_EQ(lookup_app("stream").name(), "stream");
}

TEST(Stream, TriadBandwidthNearDevicePeaks) {
  // On DRAM the triad (2 reads + 1 write per element) is bound by the
  // combined channel budget; on uncached NVM by the write path.
  const auto dram = run_app("stream", Mode::kDramOnly, cfg36());
  EXPECT_GT(dram.fom, 80.0);   // GB/s
  EXPECT_LT(dram.fom, 120.0);  // cannot beat the combined budget

  const auto nvm = run_app("stream", Mode::kUncachedNvm, cfg36());
  // write-bound: 3 streams move at ~3x the NVM write capacity at 36 thr
  EXPECT_GT(nvm.fom, 4.0);
  EXPECT_LT(nvm.fom, 12.0);
  EXPECT_GT(dram.fom / nvm.fom, 8.0);  // the asymmetry shows
}

TEST(Stream, WriteRatioIsOneThird) {
  const auto r = run_app("stream", Mode::kDramOnly, cfg36());
  const double rd = r.traces.avg_read_bw();
  const double wr = r.traces.avg_write_bw();
  // copy/scale: 1R+1W; add/triad: 2R+1W -> overall 6R : 4W
  EXPECT_NEAR(wr / (rd + wr), 0.4, 0.03);
}

TEST(Stream, NumericsVerified) {
  // After the kernels, values follow from the recurrence; checksum must be
  // identical across modes and runs (determinism) and finite.
  const auto a = run_app("stream", Mode::kDramOnly, cfg36());
  const auto b = run_app("stream", Mode::kUncachedNvm, cfg36());
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
  EXPECT_TRUE(std::isfinite(a.checksum));
  EXPECT_GT(a.checksum, 0.0);
}

TEST(Stream, ConcurrencySweepOnNvmShowsWriteCliff) {
  // Triad is write-bound on NVM: more threads beyond the WPQ sweet spot
  // must *reduce* the FoM.
  AppConfig lo = cfg36();
  lo.threads = 4;
  AppConfig hi = cfg36();
  hi.threads = 48;
  const auto r_lo = run_app("stream", Mode::kUncachedNvm, lo);
  const auto r_hi = run_app("stream", Mode::kUncachedNvm, hi);
  EXPECT_GT(r_lo.fom, 1.5 * r_hi.fom);
}

TEST(Stream, IterationOverride) {
  AppConfig cfg = cfg36();
  cfg.iterations = 3;
  const auto r = run_app("stream", Mode::kDramOnly, cfg);
  // 3 reps x 4 kernels = 12 phases
  EXPECT_EQ(r.samples.size(), 12u);
}

// ---------- GUPS ------------------------------------------------------------

TEST(Gups, XorStreamRoundTripsToZeroChecksum) {
  const auto r = run_app("gups", Mode::kDramOnly, cfg36());
  EXPECT_DOUBLE_EQ(r.checksum, 0.0);
}

TEST(Gups, NvmFarSlowerThanDram) {
  const auto dram = run_app("gups", Mode::kDramOnly, cfg36());
  const auto nvm = run_app("gups", Mode::kUncachedNvm, cfg36());
  // random sub-granularity RMW: the worst case for the Optane model
  EXPECT_GT(dram.fom / nvm.fom, 5.0);
}

TEST(Gups, WriteRatioIsHalf) {
  const auto r = run_app("gups", Mode::kUncachedNvm, cfg36());
  const double rd = r.traces.avg_read_bw();
  const double wr = r.traces.avg_write_bw();
  EXPECT_NEAR(wr / (rd + wr), 0.5, 0.02);
}

TEST(Gups, RegisteredAsExtra) {
  const auto& extras = extra_app_names();
  EXPECT_EQ(std::count(extras.begin(), extras.end(), "gups"), 1);
}

}  // namespace
}  // namespace nvms
