// Determinism meta-test: the runtime backstop for the nvms-lint DET rules.
//
// nvms-lint catches the *sources* of nondeterminism statically (unseeded
// randomness, wall-clock stamps, unordered iteration feeding exporters).
// This suite guards the *symptom* end-to-end: a sweep over a representative
// grid must produce byte-identical CSV rows, per-epoch metric streams and
// JSONL telemetry whether it runs on 1 worker or 8.  If someone defeats a
// lint rule (or finds a source the rules do not model), this is the test
// that goes red.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "cli/driver.hpp"

namespace nvms {
namespace {

/// argv helper: keeps the strings alive for the call.
struct Argv {
  explicit Argv(std::vector<std::string> args) : strings(std::move(args)) {
    for (auto& s : strings) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> strings;
  std::vector<char*> ptrs;
};

int run_cli(std::vector<std::string> args, std::string* out_text = nullptr) {
  args.insert(args.begin(), "nvmsim");
  Argv a(std::move(args));
  std::ostringstream out;
  std::ostringstream err;
  const int rc = cli_main(a.argc(), a.argv(), out, err);
  if (out_text != nullptr) *out_text = out.str();
  return rc;
}

std::string slurp(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

/// One sweep over the meta-test grid; returns stdout CSV and fills the
/// metrics/JSONL exports written to `tag`-derived temp paths.
struct SweepOutputs {
  std::string csv;
  std::string metrics;
  std::string jsonl;
};

SweepOutputs sweep_grid(const std::string& jobs, const std::string& tag,
                        bool shared_cache) {
  const std::string metrics = "/tmp/nvms_meta_metrics_" + tag + ".csv";
  const std::string jsonl = "/tmp/nvms_meta_telemetry_" + tag + ".jsonl";
  std::remove(metrics.c_str());
  std::remove(jsonl.c_str());

  std::vector<std::string> args = {
      "sweep",     "xsbench",
      "--threads", "12,24,36",
      "--modes",   "dram-only,uncached-nvm,cached-nvm",
      "--jobs",    jobs,
      "--csv",     "--metrics-out", metrics, "--jsonl", jsonl};
  if (shared_cache) args.push_back("--resolve-cache=shared");

  SweepOutputs out;
  EXPECT_EQ(run_cli(args, &out.csv), 0);
  out.metrics = slurp(metrics);
  out.jsonl = slurp(jsonl);
  std::remove(metrics.c_str());
  std::remove(jsonl.c_str());
  return out;
}

TEST(DeterminismMeta, SweepJobs1And8AgreeByteForByte) {
  const SweepOutputs serial = sweep_grid("1", "j1", /*shared_cache=*/false);
  const SweepOutputs parallel = sweep_grid("8", "j8", /*shared_cache=*/false);

  ASSERT_FALSE(serial.csv.empty());
  ASSERT_FALSE(serial.metrics.empty());
  ASSERT_FALSE(serial.jsonl.empty());
  EXPECT_EQ(serial.csv, parallel.csv);
  EXPECT_EQ(serial.metrics, parallel.metrics);
  EXPECT_EQ(serial.jsonl, parallel.jsonl);
}

TEST(DeterminismMeta, SharedResolveCacheDoesNotPerturbExports) {
  // The shared memo's hit pattern depends on worker interleaving; the
  // byte-identical-replay invariant says the exports must not.
  const SweepOutputs baseline = sweep_grid("1", "cb", /*shared_cache=*/false);
  const SweepOutputs cached = sweep_grid("8", "c8", /*shared_cache=*/true);

  ASSERT_FALSE(baseline.csv.empty());
  EXPECT_EQ(baseline.csv, cached.csv);
  EXPECT_EQ(baseline.metrics, cached.metrics);
  EXPECT_EQ(baseline.jsonl, cached.jsonl);
}

}  // namespace
}  // namespace nvms
