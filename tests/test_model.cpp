// Tests for the prediction-model module: dense linear algebra, the
// standardized ridge regression with t-statistics, the incomplete beta /
// Student-t machinery, and the Eq. 1 IPC predictor.
#include <gtest/gtest.h>

#include <cmath>

#include "model/linalg.hpp"
#include "simcore/error.hpp"
#include "model/predictor.hpp"
#include "model/regression.hpp"
#include "simcore/rng.hpp"

namespace nvms {
namespace {

// ---------- linalg -------------------------------------------------------

TEST(Linalg, MatrixMultiply) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  Matrix b(3, 2);
  b(0, 0) = 7;
  b(0, 1) = 8;
  b(1, 0) = 9;
  b(1, 1) = 10;
  b(2, 0) = 11;
  b(2, 1) = 12;
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(Linalg, TransposeAndIdentity) {
  Matrix a(2, 3, 1.0);
  a(0, 1) = 5.0;
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(1, 0), 5.0);
  const Matrix i = Matrix::identity(3);
  const Matrix ai = a * i;
  EXPECT_DOUBLE_EQ(ai(0, 1), 5.0);
}

TEST(Linalg, SolveKnownSystem) {
  // 2x + y = 5 ; x - y = 1  ->  x = 2, y = 1
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = -1;
  const auto x = solve(a, {5, 1});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Linalg, SolveNeedsPivoting) {
  // leading zero pivot forces a row swap
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const auto x = solve(a, {3, 7});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linalg, SolveSingularThrows) {
  Matrix a(2, 2, 1.0);  // rank 1
  EXPECT_THROW(solve(a, {1, 2}), Error);
}

TEST(Linalg, InverseRoundTrip) {
  Rng rng(9);
  Matrix a(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.uniform(-1, 1);
    a(i, i) += 4.0;
  }
  const Matrix inv = inverse(a);
  const Matrix prod = a * inv;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-10);
}

// ---------- scaler / regression ------------------------------------------

TEST(Scaler, ZeroMeanUnitVariance) {
  Matrix x(4, 2);
  const double col0[] = {1, 2, 3, 4};
  const double col1[] = {10, 10, 10, 10};  // constant column
  for (std::size_t i = 0; i < 4; ++i) {
    x(i, 0) = col0[i];
    x(i, 1) = col1[i];
  }
  StandardScaler s;
  s.fit(x);
  const Matrix t = s.transform(x);
  double mean = 0.0;
  for (std::size_t i = 0; i < 4; ++i) mean += t(i, 0);
  EXPECT_NEAR(mean, 0.0, 1e-12);
  // constant columns map to zero, not NaN
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(t(i, 1), 0.0);
}

TEST(Regression, RecoversNoiselessLinearModel) {
  Rng rng(17);
  const std::size_t n = 60;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-2, 2);
    const double b = rng.uniform(-2, 2);
    const double c = rng.uniform(-2, 2);
    x(i, 0) = a;
    x(i, 1) = b;
    x(i, 2) = c;
    y[i] = 3.0 * a - 2.0 * b + 0.5 * c + 7.0;
  }
  LinearRegression reg;
  const auto rep = reg.fit(x, y);
  EXPECT_NEAR(rep.r2, 1.0, 1e-9);
  // predictions are exact even though coefficients live in z-space
  const auto pred = reg.predict(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(pred[i], y[i], 1e-8);
}

TEST(Regression, IrrelevantFeatureHasHighPValue) {
  Rng rng(23);
  const std::size_t n = 200;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    x(i, 1) = rng.uniform(-1, 1);  // pure noise feature
    y[i] = 5.0 * x(i, 0) + 0.05 * rng.normal();
  }
  LinearRegression reg;
  const auto rep = reg.fit(x, y);
  EXPECT_LT(rep.p_values[0], 0.001);  // real predictor: significant
  EXPECT_GT(rep.p_values[1], 0.05);   // noise: not significant
  EXPECT_GT(std::abs(rep.t_stats[0]), std::abs(rep.t_stats[1]));
}

TEST(Regression, RejectsDegenerateShapes) {
  Matrix x(3, 4);
  std::vector<double> y(3);
  LinearRegression reg;
  EXPECT_THROW(reg.fit(x, y), ConfigError);  // fewer samples than features
  EXPECT_THROW(reg.predict(x), ConfigError);  // predict before fit
}

TEST(IncompleteBeta, KnownValues) {
  // I_x(1,1) = x
  EXPECT_NEAR(incomplete_beta(1, 1, 0.3), 0.3, 1e-10);
  // I_x(2,2) = x^2 (3 - 2x)
  EXPECT_NEAR(incomplete_beta(2, 2, 0.5), 0.5, 1e-10);
  EXPECT_NEAR(incomplete_beta(2, 2, 0.25), 0.25 * 0.25 * 2.5, 1e-10);
  EXPECT_DOUBLE_EQ(incomplete_beta(3, 4, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(3, 4, 1.0), 1.0);
}

TEST(TTest, PValueSanity) {
  // t = 0 -> p = 1; large |t| -> p -> 0; symmetric in sign.
  EXPECT_NEAR(t_test_p_value(0.0, 30), 1.0, 1e-12);
  EXPECT_LT(t_test_p_value(5.0, 30), 1e-4);
  EXPECT_NEAR(t_test_p_value(2.0, 30), t_test_p_value(-2.0, 30), 1e-12);
  // with 10 dof, |t| = 2.228 is the classic 5% two-sided critical value
  EXPECT_NEAR(t_test_p_value(2.228, 10), 0.05, 0.002);
}

// ---------- predictor ----------------------------------------------------

TEST(Predictor, LearnsSyntheticScalingLaw) {
  // Target factor is linear in the stall ratio: factor = 1 + 2*stall.
  Rng rng(31);
  std::vector<TrainingRow> rows;
  for (int i = 0; i < 100; ++i) {
    TrainingRow r;
    const double insns = rng.uniform(1e8, 1e10);
    const double cycles = insns * rng.uniform(0.5, 4.0);
    const double stall = rng.uniform(0.0, 0.9);
    r.events = {insns, cycles, stall * cycles, 0.4 * stall * cycles,
                insns / 100, insns / 400};
    r.sampled_ipc = insns / cycles;
    r.target_ipc = r.sampled_ipc * (1.0 + 2.0 * stall);
    rows.push_back(r);
  }
  IpcPredictor model;
  model.fit(rows);
  EXPECT_TRUE(model.fitted());
  // held-out probe
  for (double stall : {0.1, 0.5, 0.8}) {
    const double insns = 5e9;
    const double cycles = 1e10;
    const std::array<double, 6> ev = {insns,        cycles,
                                      stall * cycles, 0.4 * stall * cycles,
                                      insns / 100,  insns / 400};
    const double sampled = insns / cycles;
    const double predicted = model.predict(ev, sampled);
    EXPECT_NEAR(predicted, sampled * (1.0 + 2.0 * stall), 0.05 * predicted);
  }
}

TEST(Predictor, PrunesButKeepsAtLeastTwoFeatures) {
  Rng rng(37);
  std::vector<TrainingRow> rows;
  for (int i = 0; i < 60; ++i) {
    TrainingRow r;
    const double insns = rng.uniform(1e8, 1e9);
    r.events = {insns, 2 * insns, rng.uniform(0, 1e8), rng.uniform(0, 1e8),
                rng.uniform(0, 1e7), rng.uniform(0, 1e7)};
    r.sampled_ipc = 0.5;
    r.target_ipc = 0.5;  // constant target: nothing is predictive
    rows.push_back(r);
  }
  IpcPredictor model;
  model.fit(rows, /*p_threshold=*/0.0001);
  int active = 0;
  for (bool b : model.active()) active += b;
  EXPECT_GE(active, 2);
}

TEST(Predictor, AccuracyMetric) {
  EXPECT_DOUBLE_EQ(prediction_accuracy(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(prediction_accuracy(0.9, 1.0), 0.9);
  EXPECT_DOUBLE_EQ(prediction_accuracy(1.1, 1.0), 0.9);
  EXPECT_DOUBLE_EQ(prediction_accuracy(5.0, 0.0), 0.0);
}

TEST(Predictor, CombinePhaseIpcs) {
  // two phases, equal instructions, IPC 1 and 2 -> harmonic-style 4/3
  EXPECT_NEAR(combine_phase_ipcs({1e9, 1e9}, {1.0, 2.0}), 4.0 / 3.0, 1e-12);
  // weight dominance
  EXPECT_NEAR(combine_phase_ipcs({1e12, 1.0}, {1.0, 100.0}), 1.0, 1e-6);
  EXPECT_THROW(combine_phase_ipcs({1.0}, {1.0, 2.0}), ConfigError);
  EXPECT_THROW(combine_phase_ipcs({1.0}, {0.0}), ConfigError);
}

TEST(Predictor, AggregateByPhase) {
  std::vector<CounterSample> samples(3);
  samples[0].phase = "a";
  samples[0].delta.instructions = 100;
  samples[0].delta.cycles_active = 200;
  samples[1].phase = "b";
  samples[1].delta.instructions = 10;
  samples[1].delta.cycles_active = 10;
  samples[2].phase = "a";
  samples[2].delta.instructions = 300;
  samples[2].delta.cycles_active = 200;
  const auto agg = aggregate_by_phase(samples);
  ASSERT_EQ(agg.size(), 2u);
  // map ordering: "a" then "b"
  EXPECT_EQ(agg[0].phase, "a");
  EXPECT_DOUBLE_EQ(agg[0].instructions, 400.0);
  EXPECT_DOUBLE_EQ(agg[0].ipc, 1.0);
  EXPECT_DOUBLE_EQ(agg[1].ipc, 1.0);
}

}  // namespace
}  // namespace nvms
