// Edge-case coverage across modules: buffer iteration and reset, format
// extremes, pmem log overflow, cache reset semantics across runs, and
// stream-free phases.
#include <gtest/gtest.h>

#include <numeric>

#include "mem/buffer.hpp"
#include "pmem/log.hpp"
#include "pmem/region.hpp"
#include "simcore/table.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

SystemConfig tiny(Mode m = Mode::kUncachedNvm) {
  return SystemConfig::testbed(m);
}

TEST(BufferEdge, RangeForAndConstAccess) {
  MemorySystem sys(tiny());
  Buffer<int> buf(sys, "v", 8);
  std::iota(buf.begin(), buf.end(), 1);
  int sum = 0;
  for (const int v : buf) sum += v;
  EXPECT_EQ(sum, 36);
  const Buffer<int>& cref = buf;
  EXPECT_EQ(cref[3], 4);
  EXPECT_EQ(cref.span()[7], 8);
  EXPECT_NE(cref.data(), nullptr);
}

TEST(BufferEdge, ResetReleasesAndInvalidates) {
  MemorySystem sys(tiny());
  Buffer<double> buf(sys, "v", 16);
  EXPECT_TRUE(buf.valid());
  buf.reset();
  EXPECT_FALSE(buf.valid());
  EXPECT_EQ(sys.footprint(), 0u);
  buf.reset();  // idempotent
  EXPECT_FALSE(buf.valid());
}

TEST(BufferEdge, DefaultConstructedIsInert) {
  Buffer<float> buf;
  EXPECT_FALSE(buf.valid());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.bytes(), 0u);
}

TEST(FormatEdge, Extremes) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(5 * TiB), "5.00 TiB");
  EXPECT_EQ(format_time(0.0), "0.0 ns");
  EXPECT_EQ(TextTable::num(1.0 / 3.0, 5), "0.33333");
  EXPECT_EQ(TextTable::num(-2.5, 0), "-2");  // printf rounding to even
}

TEST(PmemEdge, LogRegionOverflowThrows) {
  MemorySystem sys(tiny());
  PmemRegion data(sys, "d", 64 * KiB);
  PmemRegion log(sys, "l", 256);  // tiny log: header + ~1 record
  UndoLogTx tx(data, log);
  tx.begin();
  const std::vector<std::byte> payload(128, std::byte{1});
  tx.write(0, {payload.data(), payload.size()});
  EXPECT_THROW(tx.write(256, {payload.data(), payload.size()}), ConfigError);
}

TEST(PmemEdge, RecoverOnCleanLogIsNoop) {
  MemorySystem sys(tiny());
  PmemRegion data(sys, "d", 4096);
  PmemRegion log(sys, "l", 4096);
  EXPECT_FALSE(UndoLogTx::recover(data, log));
  EXPECT_FALSE(RedoLogTx::recover(data, log));
}

TEST(CacheEdge, ResetStatsKeepsOrDropsCacheContents) {
  MemorySystem sys(tiny(Mode::kCachedNvm));
  const auto id = sys.register_buffer("b", 4 * MiB);
  auto warm_read = [&] {
    sys.reset_stats(false);
    (void)sys.submit(
        PhaseBuilder("p").threads(8).stream(seq_read(id, 4 * MiB)).build());
    return sys.traces().nvm_read.time_average();
  };
  (void)warm_read();                 // cold pass fills the cache
  const double warm = warm_read();   // hits: negligible NVM reads
  EXPECT_LT(warm, mbps(1));
  sys.reset_stats(true);             // drop contents
  const double cold = warm_read();
  EXPECT_GT(cold, mbps(100));
}

TEST(PhaseEdge, StreamFreePhaseIsComputeOnly) {
  MemorySystem sys(tiny());
  const auto res =
      sys.submit(PhaseBuilder("think").threads(4).flops(1e9).build());
  EXPECT_GT(res.time, 0.0);
  EXPECT_DOUBLE_EQ(res.time, res.compute_time);
  EXPECT_DOUBLE_EQ(sys.traces().nvm_read.time_average(), 0.0);
}

TEST(PhaseEdge, ZeroByteStreamAccepted) {
  MemorySystem sys(tiny());
  const auto id = sys.register_buffer("b", MiB);
  const auto res = sys.submit(
      PhaseBuilder("p").threads(4).stream(seq_read(id, 0)).build());
  EXPECT_DOUBLE_EQ(res.time, 0.0);
}

TEST(TableEdge, SingleColumnRender) {
  TextTable t({"only"});
  t.add_row({"row"});
  const auto out = t.render();
  EXPECT_NE(out.find("only\n"), std::string::npos);
  EXPECT_NE(out.find("row\n"), std::string::npos);
}

}  // namespace
}  // namespace nvms
