// Tests for the write-aware placement planner and the storage-tier /
// snapshot machinery.
#include <gtest/gtest.h>

#include <map>

#include "mem/buffer.hpp"
#include "placement/write_aware.hpp"
#include "prof/data_profile.hpp"
#include "simcore/units.hpp"
#include "storage/tiers.hpp"

namespace nvms {
namespace {

BufferProfile mk(const std::string& name, std::uint64_t bytes,
                 std::uint64_t rd, std::uint64_t wr) {
  BufferProfile p;
  p.name = name;
  p.bytes = bytes;
  p.read_bytes = rd;
  p.write_bytes = wr;
  return p;
}

// ---------- write-aware planner ------------------------------------------

TEST(WriteAware, PicksHighestWriteIntensityFirst) {
  const std::vector<BufferProfile> profiles = {
      mk("cold", 10 * MiB, 100 * MiB, 0),
      mk("hot", 10 * MiB, 10 * MiB, 200 * MiB),
      mk("warm", 10 * MiB, 10 * MiB, 50 * MiB),
  };
  const auto r = write_aware_plan(profiles, 15 * MiB);
  ASSERT_EQ(r.in_dram.size(), 1u);
  EXPECT_EQ(r.in_dram[0], "hot");
  EXPECT_EQ(r.plan.lookup("hot"), Placement::kDram);
  EXPECT_EQ(r.plan.lookup("warm"), Placement::kAuto);
  EXPECT_EQ(r.dram_bytes, 10 * MiB);
  EXPECT_EQ(r.total_bytes, 30 * MiB);
}

TEST(WriteAware, RespectsBudgetExactly) {
  const std::vector<BufferProfile> profiles = {
      mk("a", 10 * MiB, 0, 100 * MiB),
      mk("b", 10 * MiB, 0, 90 * MiB),
      mk("c", 5 * MiB, 0, 80 * MiB),
  };
  const auto r = write_aware_plan(profiles, 16 * MiB);
  // intensities: c = 16, a = 10, b = 9.  Greedy: c (5 MiB) fits, a
  // (10 MiB) fits, b (10 MiB) would exceed the 16 MiB budget.
  EXPECT_EQ(r.dram_bytes, 15 * MiB);
  ASSERT_EQ(r.in_dram.size(), 2u);
  EXPECT_EQ(r.in_dram[0], "c");
  EXPECT_EQ(r.in_dram[1], "a");
}

TEST(WriteAware, NeverPromotesWritelessBuffers) {
  const std::vector<BufferProfile> profiles = {
      mk("readonly", 1 * MiB, 500 * MiB, 0),
  };
  const auto r = write_aware_plan(profiles, 100 * MiB);
  EXPECT_TRUE(r.in_dram.empty());
}

TEST(WriteAware, ZeroBudgetPromotesNothing) {
  const std::vector<BufferProfile> profiles = {mk("x", 1 * MiB, 0, 1 * MiB)};
  const auto r = write_aware_plan(profiles, 0);
  EXPECT_TRUE(r.in_dram.empty());
}

TEST(ReadAware, RanksByReadIntensityAndExcludes) {
  const std::vector<BufferProfile> profiles = {
      mk("writer", 10 * MiB, 10 * MiB, 200 * MiB),
      mk("reader", 10 * MiB, 300 * MiB, 0),
      mk("mild", 10 * MiB, 50 * MiB, 0),
  };
  const auto r = read_aware_plan(profiles, 10 * MiB, {"writer"});
  ASSERT_EQ(r.in_dram.size(), 1u);
  EXPECT_EQ(r.in_dram[0], "reader");
}

TEST(PlacementPlan, LookupDefaultsToAuto) {
  PlacementPlan plan;
  EXPECT_EQ(plan.lookup("missing"), Placement::kAuto);
  plan.set("x", Placement::kDram);
  EXPECT_EQ(plan.lookup("x"), Placement::kDram);
  EXPECT_EQ(plan.size(), 1u);
}

TEST(DataProfile, MergesByNameAndSorts) {
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  const auto a = sys.register_buffer("hot", 1 * MiB);
  const auto b = sys.register_buffer("cold", 1 * MiB);
  Phase p = PhaseBuilder("p")
                .threads(8)
                .stream(seq_write(a, 64 * MiB))
                .stream(seq_read(b, 64 * MiB))
                .build();
  (void)sys.submit(p);
  sys.release_buffer(a);
  // re-allocation of the same logical structure
  const auto a2 = sys.register_buffer("hot", 2 * MiB);
  (void)sys.submit(PhaseBuilder("q")
                       .threads(8)
                       .stream(seq_write(a2, 32 * MiB))
                       .build());
  const auto profiles = collect_data_profile(sys);
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].name, "hot");  // highest write intensity first
  EXPECT_EQ(profiles[0].write_bytes, 96 * MiB);
  EXPECT_EQ(profiles[0].bytes, 2 * MiB);  // max of the re-allocations
  EXPECT_EQ(profiles[1].name, "cold");
  EXPECT_EQ(profiles[1].write_bytes, 0u);
}

// ---------- storage tiers --------------------------------------------------

TEST(StorageTiers, FourTiersInHierarchyOrder) {
  const auto& tiers = StorageTier::all();
  ASSERT_EQ(tiers.size(), 4u);
  EXPECT_EQ(tiers[0].kind, TierKind::kTmpfs);
  EXPECT_FALSE(tiers[0].persistent);
  for (std::size_t i = 1; i < tiers.size(); ++i) EXPECT_TRUE(tiers[i].persistent);
}

TEST(StorageTiers, SnapshotTimesFollowHierarchy) {
  std::map<TierKind, double> time;
  for (const auto& tier : StorageTier::all()) {
    MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
    const auto src = sys.register_buffer("state", 24 * MiB, Placement::kDram);
    SnapshotWriter w(sys, tier);
    time[tier.kind] = w.write(src, 24 * MiB, 8);
    EXPECT_EQ(w.snapshots(), 1);
    EXPECT_GT(w.total_time(), 0.0);
  }
  EXPECT_LT(time[TierKind::kTmpfs], time[TierKind::kDaxNvm]);
  EXPECT_LT(time[TierKind::kDaxNvm], time[TierKind::kRaidExt4]);
  EXPECT_LT(time[TierKind::kRaidExt4], time[TierKind::kLustre]);
}

TEST(StorageTiers, DaxWritesLandOnNvm) {
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  const auto src = sys.register_buffer("state", 8 * MiB, Placement::kDram);
  SnapshotWriter w(sys, StorageTier::by_kind(TierKind::kDaxNvm));
  (void)w.write(src, 8 * MiB, 8);
  EXPECT_GT(sys.traces().nvm_write.time_average(), 0.0);
  EXPECT_DOUBLE_EQ(sys.traces().nvm_read.time_average(), 0.0);
}

TEST(StorageTiers, BlockTierDrainsOutsideMemorySystem) {
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  const auto src = sys.register_buffer("state", 8 * MiB, Placement::kDram);
  SnapshotWriter w(sys, StorageTier::by_kind(TierKind::kLustre));
  const double dt = w.write(src, 8 * MiB, 8);
  // dominated by bytes / tier write bandwidth
  const double expect = 8.0 * static_cast<double>(MiB) / gbps(0.8);
  EXPECT_GT(dt, expect);
  EXPECT_DOUBLE_EQ(sys.traces().nvm_write.time_average(), 0.0);
}

TEST(StorageTiers, RepeatedSnapshotsAccumulate) {
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  const auto src = sys.register_buffer("state", 4 * MiB, Placement::kDram);
  SnapshotWriter w(sys, StorageTier::by_kind(TierKind::kDaxNvm));
  for (int i = 0; i < 5; ++i) (void)w.write(src, 4 * MiB, 8);
  EXPECT_EQ(w.snapshots(), 5);
  EXPECT_NEAR(w.total_time(), 5.0 * w.total_time() / 5.0, 1e-12);
}

TEST(StorageTiers, EmptySnapshotRejected) {
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  const auto src = sys.register_buffer("state", 4 * MiB, Placement::kDram);
  SnapshotWriter w(sys, StorageTier::by_kind(TierKind::kTmpfs));
  EXPECT_THROW(w.write(src, 0, 8), ConfigError);
}

TEST(MemorySystemAdvance, RecordsZeroTrafficPhase) {
  MemorySystem sys(SystemConfig::testbed(Mode::kDramOnly));
  sys.advance("io-wait", 0.25);
  EXPECT_DOUBLE_EQ(sys.now(), 0.25);
  ASSERT_EQ(sys.traces().phases.size(), 1u);
  EXPECT_EQ(sys.traces().phases[0].name, "io-wait");
  EXPECT_DOUBLE_EQ(sys.traces().dram_read.time_average(), 0.0);
  EXPECT_THROW(sys.advance("bad", -1.0), ConfigError);
}

}  // namespace
}  // namespace nvms
