// Persistent-memory substrate tests: region persistence semantics, the
// flush/fence cost path, and crash-consistency of the undo/redo logging
// protocols under injected power failures at every protocol step.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "pmem/log.hpp"
#include "pmem/region.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

std::span<const std::byte> bytes_of(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string string_at(std::span<const std::byte> data, std::size_t offset,
                      std::size_t len) {
  return std::string(reinterpret_cast<const char*>(data.data()) + offset,
                     len);
}

struct Rig {
  Rig()
      : sys(SystemConfig::testbed(Mode::kUncachedNvm)),
        data(sys, "data", 64 * KiB),
        log(sys, "log", 64 * KiB) {}
  MemorySystem sys;
  PmemRegion data;
  PmemRegion log;

  void power_failure() {
    data.crash();
    log.crash();
  }
};

// ---------- region semantics ----------------------------------------------

TEST(PmemRegion, StoreIsVolatileUntilPersist) {
  Rig rig;
  rig.data.store(128, bytes_of("hello"));
  EXPECT_EQ(string_at(rig.data.data(), 128, 5), "hello");
  EXPECT_GT(rig.data.dirty_lines(), 0u);
  rig.data.crash();  // power failure before persist
  EXPECT_NE(string_at(rig.data.data(), 128, 5), "hello");
}

TEST(PmemRegion, PersistMakesStoresDurable) {
  Rig rig;
  rig.data.store(128, bytes_of("hello"));
  rig.data.persist();
  EXPECT_EQ(rig.data.dirty_lines(), 0u);
  rig.data.crash();
  EXPECT_EQ(string_at(rig.data.data(), 128, 5), "hello");
}

TEST(PmemRegion, PersistChargesNvmWriteTraffic) {
  Rig rig;
  const double before = rig.sys.now();
  rig.data.store(0, bytes_of("x"));
  EXPECT_DOUBLE_EQ(rig.sys.now(), before);  // cached store: free
  rig.data.persist();
  EXPECT_GT(rig.sys.now(), before);  // flush + fence cost time
  EXPECT_GT(rig.sys.traffic(rig.data.buffer()).write_bytes, 0u);
}

TEST(PmemRegion, NtStoreIsImmediatelyDurable) {
  Rig rig;
  rig.data.store_nt(256, bytes_of("nt-data"));
  EXPECT_EQ(rig.data.dirty_lines(), 0u);
  rig.data.crash();
  EXPECT_EQ(string_at(rig.data.data(), 256, 7), "nt-data");
}

TEST(PmemRegion, PersistRangeOnlyFlushesThatRange) {
  Rig rig;
  rig.data.store(0, bytes_of("aaaa"));
  rig.data.store(4096, bytes_of("bbbb"));
  rig.data.persist_range(0, 4);
  rig.data.crash();
  EXPECT_EQ(string_at(rig.data.data(), 0, 4), "aaaa");
  EXPECT_NE(string_at(rig.data.data(), 4096, 4), "bbbb");
}

TEST(PmemRegion, DirtyLineAccounting) {
  Rig rig;
  // 5 bytes crossing a line boundary dirty two lines
  rig.data.store(62, bytes_of("01234"));
  EXPECT_EQ(rig.data.dirty_lines(), 2u);
  // re-dirtying an already-dirty line does not double-count
  rig.data.store(0, bytes_of("z"));
  EXPECT_EQ(rig.data.dirty_lines(), 2u);
  // a fresh line does
  rig.data.store(4096, bytes_of("z"));
  EXPECT_EQ(rig.data.dirty_lines(), 3u);
}

TEST(PmemRegion, Validation) {
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  EXPECT_THROW(PmemRegion(sys, "bad", 0), ConfigError);
  EXPECT_THROW(PmemRegion(sys, "bad", 100), ConfigError);  // not line-aligned
  PmemRegion r(sys, "ok", 4096);
  EXPECT_THROW(r.store(4095, bytes_of("toolong")), ConfigError);
}

// ---------- transaction happy paths ----------------------------------------

template <typename Tx>
class TxProtocol : public ::testing::Test {};

using Protocols = ::testing::Types<UndoLogTx, RedoLogTx>;
TYPED_TEST_SUITE(TxProtocol, Protocols);

TYPED_TEST(TxProtocol, CommittedTransactionIsDurable) {
  Rig rig;
  TypeParam tx(rig.data, rig.log);
  tx.begin();
  tx.write(100, bytes_of("alpha"));
  tx.write(5000, bytes_of("beta"));
  tx.commit();
  rig.power_failure();
  EXPECT_EQ(string_at(rig.data.data(), 100, 5), "alpha");
  EXPECT_EQ(string_at(rig.data.data(), 5000, 4), "beta");
  // nothing to recover
  EXPECT_FALSE(TypeParam::recover(rig.data, rig.log));
}

TYPED_TEST(TxProtocol, UncommittedTransactionIsInvisibleAfterCrash) {
  Rig rig;
  // establish a committed baseline first
  {
    TypeParam tx(rig.data, rig.log);
    tx.begin();
    tx.write(100, bytes_of("old!!"));
    tx.commit();
  }
  TypeParam tx(rig.data, rig.log);
  tx.begin();
  tx.write(100, bytes_of("new!!"));
  // crash without commit
  rig.power_failure();
  (void)TypeParam::recover(rig.data, rig.log);
  EXPECT_EQ(string_at(rig.data.data(), 100, 5), "old!!");
}

TYPED_TEST(TxProtocol, StatsTrackAmplification) {
  Rig rig;
  TypeParam tx(rig.data, rig.log);
  tx.begin();
  tx.write(0, bytes_of("0123456789abcdef"));
  tx.commit();
  const auto& s = tx.stats();
  EXPECT_EQ(s.transactions, 1u);
  EXPECT_EQ(s.tx_writes, 1u);
  EXPECT_EQ(s.data_bytes, 16u);
  EXPECT_GT(s.log_bytes, 16u);  // header overhead
  EXPECT_GT(s.write_amplification(), 1.5);
}

TYPED_TEST(TxProtocol, RejectsProtocolMisuse) {
  Rig rig;
  TypeParam tx(rig.data, rig.log);
  EXPECT_THROW(tx.write(0, bytes_of("x")), ConfigError);  // outside tx
  EXPECT_THROW(tx.commit(), ConfigError);
  tx.begin();
  EXPECT_THROW(tx.begin(), ConfigError);  // double begin
  EXPECT_THROW(tx.write(0, {}), ConfigError);  // empty write
}

// ---------- crash injection at every protocol step --------------------------

class UndoCrash : public ::testing::TestWithParam<CrashPoint> {};

TEST_P(UndoCrash, AtomicityHolds) {
  Rig rig;
  // baseline committed state
  {
    UndoLogTx tx(rig.data, rig.log);
    tx.begin();
    tx.write(100, bytes_of("AAAA"));
    tx.write(200, bytes_of("BBBB"));
    tx.commit();
  }
  UndoLogTx tx(rig.data, rig.log);
  tx.set_crash_point(GetParam());
  bool crashed = false;
  try {
    tx.begin();
    tx.write(100, bytes_of("CCCC"));
    tx.write(200, bytes_of("DDDD"));
    tx.commit();
  } catch (const CrashException&) {
    crashed = true;
    rig.power_failure();
    (void)UndoLogTx::recover(rig.data, rig.log);
  }
  ASSERT_TRUE(crashed);
  const std::string a = string_at(rig.data.data(), 100, 4);
  const std::string b = string_at(rig.data.data(), 200, 4);
  if (GetParam() == CrashPoint::kAfterCommitMark) {
    // commit point passed: the new state must be complete
    EXPECT_EQ(a, "CCCC");
    EXPECT_EQ(b, "DDDD");
  } else {
    // commit point not reached: the old state must be intact
    EXPECT_EQ(a, "AAAA");
    EXPECT_EQ(b, "BBBB");
  }
  // never a torn mix
  EXPECT_TRUE((a == "AAAA" && b == "BBBB") || (a == "CCCC" && b == "DDDD"));
}

INSTANTIATE_TEST_SUITE_P(Points, UndoCrash,
                         ::testing::Values(CrashPoint::kAfterLogAppend,
                                           CrashPoint::kBeforeCommitMark,
                                           CrashPoint::kAfterCommitMark));

class RedoCrash : public ::testing::TestWithParam<CrashPoint> {};

TEST_P(RedoCrash, AtomicityHolds) {
  Rig rig;
  {
    RedoLogTx tx(rig.data, rig.log);
    tx.begin();
    tx.write(100, bytes_of("AAAA"));
    tx.write(200, bytes_of("BBBB"));
    tx.commit();
  }
  RedoLogTx tx(rig.data, rig.log);
  tx.set_crash_point(GetParam());
  bool crashed = false;
  try {
    tx.begin();
    tx.write(100, bytes_of("CCCC"));
    tx.write(200, bytes_of("DDDD"));
    tx.commit();
  } catch (const CrashException&) {
    crashed = true;
    rig.power_failure();
    (void)RedoLogTx::recover(rig.data, rig.log);
  }
  ASSERT_TRUE(crashed);
  const std::string a = string_at(rig.data.data(), 100, 4);
  const std::string b = string_at(rig.data.data(), 200, 4);
  if (GetParam() == CrashPoint::kAfterCommitMark) {
    // redo commit point is the mark: recovery must re-apply
    EXPECT_EQ(a, "CCCC");
    EXPECT_EQ(b, "DDDD");
  } else {
    EXPECT_EQ(a, "AAAA");
    EXPECT_EQ(b, "BBBB");
  }
  EXPECT_TRUE((a == "AAAA" && b == "BBBB") || (a == "CCCC" && b == "DDDD"));
}

INSTANTIATE_TEST_SUITE_P(Points, RedoCrash,
                         ::testing::Values(CrashPoint::kAfterLogAppend,
                                           CrashPoint::kBeforeCommitMark,
                                           CrashPoint::kAfterCommitMark));

// ---------- protocol cost differences ---------------------------------------

TEST(TxCosts, UndoFencesPerWriteRedoDefersThem) {
  // Undo logging persists per write (write-ahead); redo logging batches
  // all persistence into commit.  For many small writes undo must spend
  // more simulated time.
  Rig undo_rig;
  UndoLogTx undo(undo_rig.data, undo_rig.log);
  undo.begin();
  std::string v = "0123456789abcdef";
  for (int i = 0; i < 64; ++i) undo.write(i * 1024, bytes_of(v));
  undo.commit();
  const double undo_time = undo_rig.sys.now();

  Rig redo_rig;
  RedoLogTx redo(redo_rig.data, redo_rig.log);
  redo.begin();
  for (int i = 0; i < 64; ++i) redo.write(i * 1024, bytes_of(v));
  redo.commit();
  const double redo_time = redo_rig.sys.now();

  EXPECT_GT(undo_time, 1.5 * redo_time);
}

TEST(TxCosts, SequentialRecordsInLogCombine) {
  // The undo log is append-only (sequential lines): its flush should be
  // cheaper per byte than flushing scattered data lines.
  Rig rig;
  UndoLogTx tx(rig.data, rig.log);
  tx.begin();
  const std::string v(256, 'x');
  for (int i = 0; i < 32; ++i) tx.write(i * 1536, bytes_of(v));
  tx.commit();
  const auto& log_traffic = rig.sys.traffic(rig.log.buffer());
  const auto& data_traffic = rig.sys.traffic(rig.data.buffer());
  EXPECT_GT(log_traffic.write_bytes, 0u);
  EXPECT_GT(data_traffic.write_bytes, 0u);
}

}  // namespace
}  // namespace nvms
