// Trace recording / replay tests: capture fidelity, serialization
// round-trips, replay equivalence, and cross-configuration what-ifs.
#include <gtest/gtest.h>

#include "harness/registry.hpp"
#include "replay/recording.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

PhaseRecording record_app(const std::string& app, Mode mode,
                          const AppConfig& cfg, double* runtime = nullptr) {
  MemorySystem sys(SystemConfig::testbed(mode));
  TraceCapture capture(sys);
  AppContext ctx(sys, cfg);
  (void)lookup_app(app).run(ctx);
  if (runtime != nullptr) *runtime = sys.now();
  return capture.finish();
}

TEST(Replay, CaptureSeesEveryPhase) {
  MemorySystem sys(SystemConfig::testbed(Mode::kDramOnly));
  TraceCapture capture(sys);
  const auto id = sys.register_buffer("b", MiB);
  (void)sys.submit(
      PhaseBuilder("one").threads(4).stream(seq_read(id, MiB)).build());
  (void)sys.submit(
      PhaseBuilder("two").threads(4).stream(seq_write(id, MiB)).build());
  const auto rec = capture.finish();
  ASSERT_EQ(rec.phases.size(), 2u);
  EXPECT_EQ(rec.phases[0].name, "one");
  EXPECT_EQ(rec.phases[1].name, "two");
  ASSERT_EQ(rec.buffers.size(), 1u);
  EXPECT_EQ(rec.buffers[0].name, "b");
  EXPECT_EQ(rec.total_bytes(), 2 * MiB);
}

TEST(Replay, DetachedCaptureStopsRecording) {
  MemorySystem sys(SystemConfig::testbed(Mode::kDramOnly));
  const auto id = sys.register_buffer("b", MiB);
  {
    TraceCapture capture(sys);
    (void)capture;
  }  // destroyed without finish(): observer detached
  (void)sys.submit(
      PhaseBuilder("p").threads(4).stream(seq_read(id, MiB)).build());
  // a fresh capture starts empty
  TraceCapture capture(sys);
  const auto rec = capture.finish();
  EXPECT_TRUE(rec.empty());
}

TEST(Replay, SerializationRoundTrip) {
  AppConfig cfg;
  cfg.threads = 24;
  const auto rec = record_app("laghos", Mode::kUncachedNvm, cfg);
  const std::string text = rec.save();
  EXPECT_NE(text.find("nvmstrace v1"), std::string::npos);
  const auto back = PhaseRecording::load(text);
  ASSERT_EQ(back.phases.size(), rec.phases.size());
  ASSERT_EQ(back.buffers.size(), rec.buffers.size());
  EXPECT_EQ(back.total_bytes(), rec.total_bytes());
  for (std::size_t i = 0; i < rec.phases.size(); ++i) {
    EXPECT_EQ(back.phases[i].name, rec.phases[i].name);
    EXPECT_EQ(back.phases[i].threads, rec.phases[i].threads);
    EXPECT_DOUBLE_EQ(back.phases[i].flops, rec.phases[i].flops);
    ASSERT_EQ(back.phases[i].streams.size(), rec.phases[i].streams.size());
    for (std::size_t j = 0; j < rec.phases[i].streams.size(); ++j) {
      EXPECT_EQ(back.phases[i].streams[j].bytes,
                rec.phases[i].streams[j].bytes);
      EXPECT_EQ(back.phases[i].streams[j].granule,
                rec.phases[i].streams[j].granule);
      EXPECT_EQ(back.phases[i].streams[j].reuse,
                rec.phases[i].streams[j].reuse);
    }
  }
}

TEST(Replay, ReplayReproducesTheRuntimeExactly) {
  AppConfig cfg;
  cfg.threads = 36;
  double original = 0.0;
  const auto rec = record_app("superlu", Mode::kUncachedNvm, cfg, &original);
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  const double replayed = rec.replay(sys);
  EXPECT_NEAR(replayed, original, 1e-12 * original);
}

TEST(Replay, CrossModeWhatIf) {
  // Record once on uncached NVM; replay on DRAM-only: the replayed run
  // must match a native DRAM run of the same app (same traffic).
  AppConfig cfg;
  cfg.threads = 36;
  const auto rec = record_app("hypre", Mode::kUncachedNvm, cfg);

  double native_dram = 0.0;
  (void)record_app("hypre", Mode::kDramOnly, cfg, &native_dram);

  MemorySystem dram_sys(SystemConfig::testbed(Mode::kDramOnly));
  const double replayed = rec.replay(dram_sys);
  EXPECT_NEAR(replayed, native_dram, 1e-9 * native_dram);
}

TEST(Replay, DeviceWhatIfSweep) {
  // Replay the same recording against a hypothetical next-gen NVM with
  // 2x write bandwidth: the write-throttled app must speed up.
  AppConfig cfg;
  cfg.threads = 36;
  const auto rec = record_app("ft", Mode::kUncachedNvm, cfg);

  MemorySystem base(SystemConfig::testbed(Mode::kUncachedNvm));
  const double base_time = rec.replay(base);

  SystemConfig improved_cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  improved_cfg.nvm.write_bw_peak *= 2.0;
  MemorySystem improved(improved_cfg);
  const double improved_time = rec.replay(improved);
  EXPECT_LT(improved_time, 0.65 * base_time);
}

TEST(Replay, SerializationPreservesAwkwardDoubles) {
  // Regression: default stream precision (6 digits) would truncate these.
  PhaseRecording rec;
  rec.buffers.push_back({"b", 123456789, Placement::kNvm});
  Phase p;
  p.name = "p";
  p.threads = 7;
  p.flops = 86507523.0;            // 8 significant digits
  p.parallel_fraction = 0.9876543;
  p.mlp = 3.1415926535;
  p.overlap = 0.123456789;
  p.streams.push_back(seq_read(0, 987654321));
  rec.phases.push_back(p);
  const auto back = PhaseRecording::load(rec.save());
  ASSERT_EQ(back.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(back.phases[0].flops, p.flops);
  EXPECT_DOUBLE_EQ(back.phases[0].parallel_fraction, p.parallel_fraction);
  EXPECT_DOUBLE_EQ(back.phases[0].mlp, p.mlp);
  EXPECT_DOUBLE_EQ(back.phases[0].overlap, p.overlap);
  EXPECT_EQ(back.phases[0].streams[0].bytes, 987654321u);
}

TEST(Replay, SavedFileReplaysIdentically) {
  // Full fidelity end-to-end: record -> save -> load -> replay must equal
  // the original runtime bit-for-bit practically.
  AppConfig cfg;
  cfg.threads = 36;
  double original = 0.0;
  const auto rec = record_app("superlu", Mode::kUncachedNvm, cfg, &original);
  const auto back = PhaseRecording::load(rec.save());
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  EXPECT_NEAR(back.replay(sys), original, 1e-12 * original);
}

TEST(Replay, LoadRejectsMalformedInput) {
  EXPECT_THROW(PhaseRecording::load("garbage"), ConfigError);
  EXPECT_THROW(PhaseRecording::load("nvmstrace v1\nwat 1 2 3\n"),
               ConfigError);
  EXPECT_THROW(
      PhaseRecording::load("nvmstrace v1\nphase p 4 0 1 8 1 1\n"),
      ConfigError);  // stream promised but missing
  EXPECT_THROW(PhaseRecording::load(
                   "nvmstrace v1\nphase p 4 0 1 8 1 1\n"
                   "stream 0 100 seq read 64 1 2097152\n"),
               ConfigError);  // stream references unknown buffer
  EXPECT_THROW(PhaseRecording::load("nvmstrace v1\nbuffer b 100 sideways\n"),
               ConfigError);
}

void expect_load_error(const std::string& text, const std::string& needle) {
  try {
    (void)PhaseRecording::load(text);
    FAIL() << "load accepted malformed input: " << text;
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got: " << e.what() << "\nwanted substring: " << needle;
  }
}

TEST(Replay, LoadReportsWhatIsMalformed) {
  // Each rejection names the defect — the trace format is hand-editable
  // (and CLI-loadable), so the diagnostics matter.
  expect_load_error("", "bad header");
  expect_load_error("nvmstrace v2\n", "bad header");
  expect_load_error("nvmstrace v1\nbuffer b 100\n", "truncated buffer line");
  expect_load_error("nvmstrace v1\nphase p 4 0 1\n", "truncated phase line");
  expect_load_error(
      "nvmstrace v1\nbuffer b 100 auto\nphase p 4 0 1 8 1 1\n"
      "stream 0 100 seq read 64 1\n",
      "truncated stream line");
  expect_load_error(
      "nvmstrace v1\nbuffer b 100 auto\nphase p 4 0 1 8 1 1\n"
      "stream 0 100 diag read 64 1 2097152\n",
      "unknown pattern 'diag'");
  expect_load_error("nvmstrace v1\nbuffer b 100 sideways\n",
                    "unknown placement 'sideways'");
  expect_load_error(
      "nvmstrace v1\nbuffer b 100 auto\nphase p 4 0 1 8 1 1\n"
      "stream 0 100 seq readwrite 64 1 2097152\n",
      "unknown direction 'readwrite'");
  expect_load_error(
      "nvmstrace v1\nbuffer b 100 auto\nbuffer b 200 dram\n",
      "duplicate buffer name 'b'");
  expect_load_error(
      "nvmstrace v1\nphase p 4 0 1 8 1 1\nbuffer b 100 auto\n",
      "buffer inside phase");
  expect_load_error(
      "nvmstrace v1\nphase p 4 0 1 8 1 1\nphase q 4 0 1 8 1 1\n",
      "phase while streams pending");
}

TEST(Replay, SaveRejectsNamesWithWhitespace) {
  // Names are single tokens in the line format; a space would silently
  // shift every following field on reload.
  PhaseRecording rec;
  rec.buffers.push_back({"bad name", 100, Placement::kAuto});
  EXPECT_THROW((void)rec.save(), ConfigError);

  PhaseRecording rec2;
  rec2.buffers.push_back({"ok", 100, Placement::kAuto});
  Phase p;
  p.name = "phase\tname";
  rec2.phases.push_back(p);
  EXPECT_THROW((void)rec2.save(), ConfigError);
}

TEST(Replay, ReplayRequiresFreshSystem) {
  AppConfig cfg;
  cfg.threads = 12;
  const auto rec = record_app("hacc", Mode::kDramOnly, cfg);
  MemorySystem sys(SystemConfig::testbed(Mode::kDramOnly));
  (void)sys.register_buffer("preexisting", MiB);
  EXPECT_THROW(rec.replay(sys), ConfigError);
}

}  // namespace
}  // namespace nvms
