// Property-based tests (parameterized sweeps) over the simulator's core
// invariants: monotonicity, conservation, and bound properties that must
// hold for *every* configuration, not just the calibrated points.
#include <gtest/gtest.h>

#include <tuple>

#include "memsim/dram_cache.hpp"
#include "memsim/memory_system.hpp"
#include "memsim/resolve.hpp"
#include "simcore/rng.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

struct Rig {
  DeviceParams dram = ddr4_socket_params(96 * GiB);
  DeviceParams nvm = optane_socket_params(768 * GiB);
  CpuParams cpu;
};

// ---------- resolver invariants over a thread sweep -----------------------

class ThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSweep, AchievedBandwidthNeverExceedsCapacity) {
  Rig rig;
  const int threads = GetParam();
  Phase p;
  p.name = "probe";
  p.threads = threads;
  DeviceDemand dem;
  dem.add(Pattern::kSequential, Dir::kRead, 8 * GiB);
  dem.add(Pattern::kSequential, Dir::kWrite, 2 * GiB);
  const auto res = resolve_phase(p, {}, dem, rig.dram, rig.nvm, rig.cpu);
  EXPECT_LE(res.nvm.read_bw,
            rig.nvm.read_capacity(PatClass::kSeq, threads) * 1.001);
  EXPECT_LE(res.nvm.write_bw,
            rig.nvm.write_capacity(PatClass::kSeq, threads) * 1.001);
  EXPECT_GE(res.nvm.throttle, 1e-3);
  EXPECT_LE(res.nvm.throttle, 1.0);
  EXPECT_GE(res.nvm.wpq_util, 0.0);
  EXPECT_LE(res.nvm.wpq_util, 1.0);
}

TEST_P(ThreadSweep, PureComputeScalesWithThreads) {
  Rig rig;
  const int threads = GetParam();
  Phase p;
  p.name = "compute";
  p.threads = threads;
  p.flops = 1e10;
  const auto res = resolve_phase(p, {}, {}, rig.dram, rig.nvm, rig.cpu);
  Phase p1 = p;
  p1.threads = 1;
  const auto res1 = resolve_phase(p1, {}, {}, rig.dram, rig.nvm, rig.cpu);
  EXPECT_LE(res.time, res1.time + 1e-12);
  EXPECT_NEAR(res1.time / res.time, rig.cpu.core_equivalents(threads), 1e-6);
}

TEST_P(ThreadSweep, CountersConsistent) {
  Rig rig;
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  const auto id = sys.register_buffer("b", 8 * MiB);
  Phase p = PhaseBuilder("p")
                .threads(GetParam())
                .flops(1e8)
                .stream(seq_read(id, 64 * MiB))
                .stream(seq_write(id, 16 * MiB))
                .build();
  (void)sys.submit(p);
  const auto& c = sys.counters();
  EXPECT_GE(c.cycles_active, c.stall_cycles);
  EXPECT_GE(c.stall_cycles, c.offcore_wait);
  EXPECT_NEAR(c.imc_reads * 64.0, 64.0 * static_cast<double>(MiB), 64.0);
  EXPECT_NEAR(c.imc_writes * 64.0, 16.0 * static_cast<double>(MiB), 64.0);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep,
                         ::testing::Values(1, 2, 4, 8, 12, 16, 24, 36, 48,
                                           96));

// ---------- monotonicity in problem size ----------------------------------

class ByteSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ByteSweep, TimeMonotoneInBytes) {
  Rig rig;
  Phase p;
  p.name = "probe";
  p.threads = 24;
  DeviceDemand small;
  small.add(Pattern::kStrided, Dir::kRead, GetParam());
  DeviceDemand large;
  large.add(Pattern::kStrided, Dir::kRead, GetParam() * 2);
  const auto rs = resolve_phase(p, {}, small, rig.dram, rig.nvm, rig.cpu);
  const auto rl = resolve_phase(p, {}, large, rig.dram, rig.nvm, rig.cpu);
  EXPECT_GE(rl.time, rs.time);
  EXPECT_NEAR(rl.time / rs.time, 2.0, 0.01);  // linear when uncoupled
}

INSTANTIATE_TEST_SUITE_P(Bytes, ByteSweep,
                         ::testing::Values(64 * KiB, 1 * MiB, 64 * MiB,
                                           1 * GiB));

// ---------- pattern ordering ----------------------------------------------

class PatternCase : public ::testing::TestWithParam<Pattern> {};

TEST_P(PatternCase, NvmNeverFasterThanDram) {
  Rig rig;
  Phase p;
  p.name = "probe";
  p.threads = 24;
  for (const Dir dir : {Dir::kRead, Dir::kWrite}) {
    DeviceDemand dem;
    dem.add(GetParam(), dir, 256 * MiB);
    const auto on_dram = resolve_phase(p, dem, {}, rig.dram, rig.nvm, rig.cpu);
    const auto on_nvm = resolve_phase(p, {}, dem, rig.dram, rig.nvm, rig.cpu);
    EXPECT_LE(on_dram.time, on_nvm.time) << to_string(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, PatternCase,
                         ::testing::Values(Pattern::kSequential,
                                           Pattern::kStrided,
                                           Pattern::kRandom));

// ---------- cache conservation under fuzzed streams ------------------------

class CacheFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheFuzz, ConservationAndBounds) {
  Rng rng(GetParam());
  CacheParams cp;
  cp.line = 4 * KiB;
  cp.capacity = (1 + rng.below(64)) * MiB;
  DramCache cache(cp);

  for (int i = 0; i < 40; ++i) {
    StreamDesc s;
    s.buffer = 0;
    s.bytes = (1 + rng.below(64)) * MiB;
    s.pattern = rng.below(3) == 0   ? Pattern::kRandom
                : rng.below(2) == 0 ? Pattern::kStrided
                                    : Pattern::kSequential;
    s.dir = rng.below(2) == 0 ? Dir::kRead : Dir::kWrite;
    s.reuse = static_cast<std::uint32_t>(1 + rng.below(4));
    const std::uint64_t buf_size = (1 + rng.below(128)) * MiB;
    const std::uint64_t base = rng.below(16) * (1ull << 30);

    const auto out = cache.access(s, base, buf_size);
    const std::uint64_t touches = std::max<std::uint64_t>(s.bytes / cp.line, 1);
    // hits + misses account for (approximately, due to sampling) the touches
    EXPECT_NEAR(static_cast<double>(out.hits + out.misses),
                static_cast<double>(touches),
                0.15 * static_cast<double>(touches) + 4.0);
    // NVM fetch traffic is line-per-miss (up to sampling round-off)
    const double fetch =
        static_cast<double>(out.nvm_read + out.nvm_read_scattered);
    const double expect = static_cast<double>(out.misses * cp.line);
    EXPECT_NEAR(fetch, expect,
                0.002 * expect + static_cast<double>(cp.line));
    // fills never exceed misses (+ stores), writebacks never exceed misses
    EXPECT_LE(out.nvm_write, (out.misses + out.hits) * cp.line);
    EXPECT_GE(cache.occupancy(), 0.0);
    EXPECT_LE(cache.occupancy(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheFuzz,
                         ::testing::Values(11, 23, 37, 53, 71));

// ---------- end-to-end determinism under fuzzed phases ---------------------

class PhaseFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PhaseFuzz, SubmitAlwaysAdvancesAndStaysFinite) {
  Rng rng(GetParam());
  MemorySystem sys(SystemConfig::testbed(Mode::kCachedNvm));
  const auto id = sys.register_buffer("fuzz", (1 + rng.below(256)) * MiB);
  for (int i = 0; i < 30; ++i) {
    PhaseBuilder b("fuzz");
    b.threads(static_cast<int>(1 + rng.below(48)));
    b.flops(rng.uniform(0.0, 1e10));
    b.mlp(rng.uniform(0.5, 16.0));
    b.overlap(rng.uniform(0.0, 1.0));
    b.parallel_fraction(rng.uniform(0.0, 1.0));
    const int streams = static_cast<int>(rng.below(4));
    for (int s = 0; s < streams; ++s) {
      StreamDesc d;
      d.buffer = id;
      d.bytes = rng.below(64 * MiB);
      d.pattern = rng.below(2) == 0 ? Pattern::kSequential : Pattern::kRandom;
      d.dir = rng.below(2) == 0 ? Dir::kRead : Dir::kWrite;
      d.granule = 64 << rng.below(6);
      b.stream(d);
    }
    const double before = sys.now();
    const auto res = sys.submit(b.build());
    EXPECT_TRUE(std::isfinite(res.time));
    EXPECT_GE(res.time, 0.0);
    EXPECT_GE(sys.now(), before);
  }
  // trace bookkeeping stayed consistent
  EXPECT_EQ(sys.traces().phases.size(), 30u);
  EXPECT_TRUE(std::isfinite(sys.counters().ipc()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhaseFuzz,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace nvms
