// Delta-replay evaluator tests: every evaluation must be bit-identical to
// a full replay of the same plan on a fresh system — across placement
// flips, arbitrary plans, commits, NUMA configurations and the Memory-mode
// fallback.  CapacityError behaviour must also match what a replay would
// raise at buffer-registration time.
#include <gtest/gtest.h>

#include <algorithm>

#include "harness/registry.hpp"
#include "obs/metrics.hpp"
#include "placement/replay_evaluator.hpp"
#include "replay/recording.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

PhaseRecording record(const std::string& app, int threads = 36) {
  MemorySystem sys(SystemConfig::testbed(Mode::kUncachedNvm));
  TraceCapture capture(sys);
  AppConfig cfg;
  cfg.threads = threads;
  AppContext ctx(sys, cfg);
  (void)lookup_app(app).run(ctx);
  return capture.finish();
}

std::function<MemorySystem()> factory(const SystemConfig& cfg) {
  return [cfg] { return MemorySystem(cfg); };
}

double reference_replay(const PhaseRecording& rec, const SystemConfig& cfg,
                        const PlacementPlan& plan) {
  MemorySystem sys(cfg);
  return rec.replay(sys, &plan);
}

TEST(ReplayEvaluator, BaselineMatchesFullReplay) {
  const auto rec = record("superlu");
  const auto cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  ReplayEvaluator ev(rec, factory(cfg));
  EXPECT_TRUE(ev.incremental());
  MemorySystem sys(cfg);
  EXPECT_EQ(ev.baseline(), rec.replay(sys));
  EXPECT_EQ(ev.current_runtime(), ev.baseline());
}

TEST(ReplayEvaluator, FlipIsBitIdenticalToFullReplayForEveryBuffer) {
  const auto rec = record("scalapack");
  const auto cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  const ReplayEvaluator ev(rec, factory(cfg));
  for (std::size_t i = 0; i < rec.buffers.size(); ++i) {
    PlacementPlan plan;
    plan.set(rec.buffers[i].name, Placement::kDram);
    double want = 0.0;
    bool want_throw = false;
    try {
      want = reference_replay(rec, cfg, plan);
    } catch (const CapacityError&) {
      want_throw = true;
    }
    if (want_throw) {
      EXPECT_THROW((void)ev.evaluate_flip(i, Placement::kDram), CapacityError)
          << rec.buffers[i].name;
    } else {
      EXPECT_EQ(ev.evaluate_flip(i, Placement::kDram), want)
          << rec.buffers[i].name;
    }
  }
}

TEST(ReplayEvaluator, ArbitraryPlanMatchesFullReplay) {
  const auto rec = record("ft");
  const auto cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  const ReplayEvaluator ev(rec, factory(cfg));
  // promote the first buffers that fit half the DRAM, pin one to NVM
  PlacementPlan plan;
  std::uint64_t used = 0;
  for (const auto& b : rec.buffers) {
    if (used + b.bytes <= cfg.dram.capacity / 2) {
      plan.set(b.name, Placement::kDram);
      used += b.bytes;
    } else {
      plan.set(b.name, Placement::kNvm);
    }
  }
  EXPECT_EQ(ev.evaluate(plan), reference_replay(rec, cfg, plan));
  // kAuto entries keep the recorded placement, matching replay semantics
  PlacementPlan noop;
  for (const auto& b : rec.buffers) noop.set(b.name, Placement::kAuto);
  EXPECT_EQ(ev.evaluate(noop), ev.baseline());
}

TEST(ReplayEvaluator, CommitTracksTheReplayedRuntime) {
  const auto rec = record("hypre");
  const auto cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  ReplayEvaluator ev(rec, factory(cfg));
  // commit the two smallest buffers to DRAM, one at a time
  std::vector<std::size_t> order(rec.buffers.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rec.buffers[a].bytes < rec.buffers[b].bytes;
  });
  std::size_t committed = 0;
  std::uint64_t used = 0;
  for (const std::size_t i : order) {
    if (committed == 2) break;
    if (used + rec.buffers[i].bytes > cfg.dram.capacity) continue;
    const double predicted = ev.evaluate_flip(i, Placement::kDram);
    ev.commit_flip(i, Placement::kDram);
    EXPECT_EQ(ev.current_runtime(), predicted);
    EXPECT_EQ(ev.plan().lookup(rec.buffers[i].name), Placement::kDram);
    used += rec.buffers[i].bytes;
    ++committed;
  }
  ASSERT_EQ(committed, 2u);
  // the committed state is exactly a full replay of the committed plan
  EXPECT_EQ(ev.current_runtime(), reference_replay(rec, cfg, ev.plan()));
  // a flip back to kAuto reverts to the recorded placement
  PlacementPlan reverted = ev.plan();
  for (const auto& [name, p] : ev.plan().entries()) {
    (void)p;
    reverted.set(name, Placement::kAuto);
  }
  EXPECT_EQ(ev.evaluate(reverted), ev.baseline());
}

TEST(ReplayEvaluator, OverCapacityFlipThrowsLikeAReplayWould) {
  PhaseRecording rec;
  rec.buffers.push_back({"big", 8 * MiB, Placement::kAuto});
  rec.phases.push_back(PhaseBuilder("p")
                           .threads(2)
                           .flops(1e6)
                           .stream(seq_write(0, 32 * MiB))
                           .build());
  SystemConfig cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  cfg.dram.capacity = 4 * MiB;
  const ReplayEvaluator ev(rec, factory(cfg));
  EXPECT_THROW((void)ev.evaluate_flip(0, Placement::kDram), CapacityError);
  PlacementPlan plan;
  plan.set("big", Placement::kDram);
  EXPECT_THROW((void)ev.evaluate(plan), CapacityError);
  EXPECT_THROW((void)reference_replay(rec, cfg, plan), CapacityError);
}

TEST(ReplayEvaluator, TwoSocketConfigurationsStayBitIdentical) {
  const auto rec = record("boxlib", 24);
  for (const NumaPolicy policy :
       {NumaPolicy::kLocalSocket, NumaPolicy::kRemoteSocket,
        NumaPolicy::kInterleave}) {
    SystemConfig cfg = SystemConfig::testbed(Mode::kUncachedNvm);
    cfg.sockets = 2;
    cfg.numa_policy = policy;
    const ReplayEvaluator ev(rec, factory(cfg));
    EXPECT_TRUE(ev.incremental());
    for (std::size_t i = 0; i < rec.buffers.size(); ++i) {
      PlacementPlan plan;
      plan.set(rec.buffers[i].name, Placement::kDram);
      EXPECT_EQ(ev.evaluate_flip(i, Placement::kDram),
                reference_replay(rec, cfg, plan))
          << to_string(policy) << " " << rec.buffers[i].name;
    }
  }
}

TEST(ReplayEvaluator, MemoryModeFallsBackToMemoizedFullReplays) {
  const auto rec = record("xsbench", 24);
  const auto cfg = SystemConfig::testbed(Mode::kCachedNvm);
  const ReplayEvaluator ev(rec, factory(cfg));
  EXPECT_FALSE(ev.incremental());
  for (std::size_t i = 0; i < std::min<std::size_t>(rec.buffers.size(), 3);
       ++i) {
    PlacementPlan plan;
    plan.set(rec.buffers[i].name, Placement::kDram);
    EXPECT_EQ(ev.evaluate_flip(i, Placement::kDram),
              reference_replay(rec, cfg, plan))
        << rec.buffers[i].name;
  }
  const auto s = ev.stats();
  EXPECT_GT(s.full_replays, 0u);
  EXPECT_EQ(s.evals, s.full_replays - 1);  // +1 for the baseline replay
}

TEST(ReplayEvaluator, DramOnlyModeIgnoresPlacement) {
  const auto rec = record("hacc", 12);
  const auto cfg = SystemConfig::testbed(Mode::kDramOnly);
  const ReplayEvaluator ev(rec, factory(cfg));
  for (std::size_t i = 0; i < rec.buffers.size(); ++i) {
    EXPECT_EQ(ev.evaluate_flip(i, Placement::kDram), ev.baseline());
  }
}

TEST(ReplayEvaluator, PublishesGauges) {
  const auto rec = record("ft", 24);
  const auto cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  const ReplayEvaluator ev(rec, factory(cfg));
  (void)ev.evaluate_flip(0, Placement::kDram);
  MetricsRegistry m;
  ev.publish(m);
  ASSERT_NE(m.find("placement.evals"), nullptr);
  EXPECT_EQ(m.find("placement.evals")->value, 1.0);
  ASSERT_NE(m.find("placement.phase_cache.hits"), nullptr);
  ASSERT_NE(m.find("placement.phase_cache.misses"), nullptr);
}

}  // namespace
}  // namespace nvms
