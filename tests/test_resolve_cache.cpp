// Phase-resolution memoization tests: key normalization, hit/miss/evict
// accounting, the byte-identical-replay invariant (results and telemetry
// streams), the thread-clamp boundary, and end-to-end sweep determinism
// (cache-off serial vs shared-cache parallel).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "harness/sweep.hpp"
#include "memsim/memory_system.hpp"
#include "memsim/resolve.hpp"
#include "memsim/resolve_cache.hpp"
#include "obs/telemetry.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

Phase make_phase(const std::string& name, int threads = 24) {
  Phase p;
  p.name = name;
  p.threads = threads;
  p.flops = 1e9;
  p.mlp = 8.0;
  return p;
}

std::vector<LaneDemand> make_lanes(const DeviceParams& dram,
                                   const DeviceParams& nvm,
                                   std::uint64_t read_bytes = 256 * MiB,
                                   std::uint64_t write_bytes = 64 * MiB) {
  std::vector<LaneDemand> lanes(2);
  lanes[0].dev = &dram;
  lanes[0].label = "dram0";
  lanes[0].dem.add(PatClass::kSeq, Dir::kRead, read_bytes);
  lanes[1].dev = &nvm;
  lanes[1].label = "nvm0";
  lanes[1].dem.add(PatClass::kSeq, Dir::kWrite, write_bytes);
  return lanes;
}

/// Captures every epoch sample verbatim for stream comparison.
struct CaptureProbe final : EpochProbe {
  struct Sample {
    std::string name, device;
    double t, value;
  };
  std::vector<Sample> samples;
  void epoch_sample(std::string_view name, std::string_view device,
                    double t, double value) override {
    samples.push_back({std::string(name), std::string(device), t, value});
  }
};

TEST(ResolveCacheMode, Parsing) {
  EXPECT_EQ(parse_resolve_cache_mode("off"), ResolveCacheMode::kOff);
  EXPECT_EQ(parse_resolve_cache_mode("run"), ResolveCacheMode::kPerRun);
  EXPECT_EQ(parse_resolve_cache_mode("shared"), ResolveCacheMode::kShared);
  EXPECT_FALSE(parse_resolve_cache_mode("ON").has_value());
  EXPECT_FALSE(parse_resolve_cache_mode("").has_value());
  EXPECT_STREQ(to_string(ResolveCacheMode::kShared), "shared");
}

TEST(ResolveKey, PhaseNameDoesNotAffectKey) {
  const DeviceParams dram = ddr4_socket_params(192 * MiB);
  const DeviceParams nvm = optane_socket_params(1536 * MiB);
  const auto lanes = make_lanes(dram, nvm);
  CpuParams cpu;
  const auto a = make_resolve_key(make_phase("iter-1"), lanes, cpu, 0, 0);
  const auto b = make_resolve_key(make_phase("iter-2"), lanes, cpu, 0, 0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(ResolveKey, ThreadsClampLikeTheResolver) {
  // Oversubscribed phases resolve identically to max_threads (the
  // resolver clamps), so they must share one cache entry.
  const DeviceParams dram = ddr4_socket_params(192 * MiB);
  const DeviceParams nvm = optane_socket_params(1536 * MiB);
  const auto lanes = make_lanes(dram, nvm);
  CpuParams cpu;
  const int max = cpu.max_threads();
  const auto at_max =
      make_resolve_key(make_phase("p", max), lanes, cpu, 0, 0);
  const auto over =
      make_resolve_key(make_phase("p", 2 * max), lanes, cpu, 0, 0);
  const auto under =
      make_resolve_key(make_phase("p", max - 1), lanes, cpu, 0, 0);
  EXPECT_EQ(at_max, over);
  EXPECT_FALSE(at_max == under);
}

TEST(ResolveKey, DemandAndDeviceChangesChangeTheKey) {
  const DeviceParams dram = ddr4_socket_params(192 * MiB);
  const DeviceParams nvm = optane_socket_params(1536 * MiB);
  CpuParams cpu;
  const Phase p = make_phase("p");
  const auto base =
      make_resolve_key(p, make_lanes(dram, nvm), cpu, 0, 0);
  // One byte of demand difference -> different key.
  const auto more_demand = make_resolve_key(
      p, make_lanes(dram, nvm, 256 * MiB + 1), cpu, 0, 0);
  EXPECT_FALSE(base == more_demand);
  // A resolution-relevant device change -> different key.
  DeviceParams slower_nvm = nvm;
  slower_nvm.write_bw_peak *= 0.5;
  const auto slower =
      make_resolve_key(p, make_lanes(dram, slower_nvm), cpu, 0, 0);
  EXPECT_FALSE(base == slower);
  // The UPI constraint participates too.
  const auto upi =
      make_resolve_key(p, make_lanes(dram, nvm), cpu, 1 * GiB, 31.2e9);
  EXPECT_FALSE(base == upi);
}

TEST(ResolveCache, HitReturnsTheResolvedValue) {
  const DeviceParams dram = ddr4_socket_params(192 * MiB);
  const DeviceParams nvm = optane_socket_params(1536 * MiB);
  const auto lanes = make_lanes(dram, nvm);
  CpuParams cpu;
  const Phase p = make_phase("p");
  const MultiResolution direct =
      resolve_lanes(p, lanes, cpu, 0.0, 0.0, nullptr, 0.0);

  ResolveCache cache(2);
  const MultiResolution miss =
      cache.resolve(p, lanes, cpu, 0.0, 0.0, nullptr, 0.0);
  const MultiResolution hit =
      cache.resolve(p, lanes, cpu, 0.0, 0.0, nullptr, 1.5);
  for (const MultiResolution* r : {&miss, &hit}) {
    EXPECT_DOUBLE_EQ(r->time, direct.time);
    EXPECT_DOUBLE_EQ(r->compute_time, direct.compute_time);
    ASSERT_EQ(r->lanes.size(), direct.lanes.size());
    for (std::size_t i = 0; i < direct.lanes.size(); ++i) {
      EXPECT_DOUBLE_EQ(r->lanes[i].read_bw, direct.lanes[i].read_bw);
      EXPECT_DOUBLE_EQ(r->lanes[i].write_bw, direct.lanes[i].write_bw);
      EXPECT_DOUBLE_EQ(r->lanes[i].wpq_util, direct.lanes[i].wpq_util);
      EXPECT_DOUBLE_EQ(r->lanes[i].throttle, direct.lanes[i].throttle);
    }
  }
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ResolveCache, HitReplaysTheExactTelemetryStream) {
  // The byte-identical-replay invariant: a hit must emit the same samples
  // a fresh resolution would, re-stamped at the hit's virtual time.  The
  // first resolution here runs without any probe attached — the recording
  // must happen regardless.
  const DeviceParams dram = ddr4_socket_params(192 * MiB);
  const DeviceParams nvm = optane_socket_params(1536 * MiB);
  const auto lanes = make_lanes(dram, nvm);
  CpuParams cpu;
  const Phase p = make_phase("p");

  CaptureProbe expected;
  resolve_lanes(p, lanes, cpu, 0.0, 0.0, &expected, 2.25);

  ResolveCache cache(1);
  (void)cache.resolve(p, lanes, cpu, 0.0, 0.0, nullptr, 0.0);  // probeless
  CaptureProbe replayed;
  (void)cache.resolve(p, lanes, cpu, 0.0, 0.0, &replayed, 2.25);

  ASSERT_EQ(replayed.samples.size(), expected.samples.size());
  ASSERT_GT(expected.samples.size(), 0u);
  for (std::size_t i = 0; i < expected.samples.size(); ++i) {
    EXPECT_EQ(replayed.samples[i].name, expected.samples[i].name);
    EXPECT_EQ(replayed.samples[i].device, expected.samples[i].device);
    EXPECT_DOUBLE_EQ(replayed.samples[i].t, expected.samples[i].t);
    EXPECT_DOUBLE_EQ(replayed.samples[i].value, expected.samples[i].value);
  }
}

TEST(ResolveCache, EvictionKeepsTheCacheBounded) {
  const DeviceParams dram = ddr4_socket_params(192 * MiB);
  const DeviceParams nvm = optane_socket_params(1536 * MiB);
  CpuParams cpu;
  ResolveCache cache(/*shards=*/1, /*max_entries=*/4);
  for (int i = 0; i < 16; ++i) {
    const auto lanes =
        make_lanes(dram, nvm, 1 * MiB * static_cast<std::uint64_t>(i + 1));
    (void)cache.resolve(make_phase("p"), lanes, cpu, 0.0, 0.0, nullptr, 0.0);
  }
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 16u);
  EXPECT_EQ(s.entries, 4u);
  EXPECT_EQ(s.evictions, 12u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.0);
}

TEST(ResolveCache, PublishExportsGauges) {
  const DeviceParams dram = ddr4_socket_params(192 * MiB);
  const DeviceParams nvm = optane_socket_params(1536 * MiB);
  const auto lanes = make_lanes(dram, nvm);
  CpuParams cpu;
  ResolveCache cache(1);
  (void)cache.resolve(make_phase("p"), lanes, cpu, 0.0, 0.0, nullptr, 0.0);
  (void)cache.resolve(make_phase("q"), lanes, cpu, 0.0, 0.0, nullptr, 0.0);

  MetricsRegistry m;
  cache.publish(m);
  double hits = -1.0, hit_rate = -1.0;
  for (const auto& metric : m.metrics()) {
    if (metric.name == "resolve_cache.hits") hits = metric.value;
    if (metric.name == "resolve_cache.hit_rate") hit_rate = metric.value;
  }
  EXPECT_DOUBLE_EQ(hits, 1.0);  // "q" has the same shape as "p"
  EXPECT_DOUBLE_EQ(hit_rate, 0.5);
}

TEST(ResolveCache, SubmitWithCacheMatchesWithout) {
  // Whole-system check: two identical systems, one cached, run the same
  // phases (including repeats) and must agree on clock and counters.
  SystemConfig cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  MemorySystem plain(cfg);
  MemorySystem cached(cfg);
  ResolveCache cache(2);
  cached.set_resolve_cache(&cache);

  for (MemorySystem* sys : {&plain, &cached}) {
    const auto id = sys->register_buffer("b", 8 * MiB);
    for (int i = 0; i < 5; ++i) {
      (void)sys->submit(PhaseBuilder("iter")
                            .threads(24)
                            .flops(1e9)
                            .stream(seq_read(id, 512 * MiB))
                            .stream(seq_write(id, 128 * MiB))
                            .build());
    }
  }
  EXPECT_DOUBLE_EQ(plain.now(), cached.now());
  EXPECT_DOUBLE_EQ(plain.counters().cycles_active,
                   cached.counters().cycles_active);
  EXPECT_DOUBLE_EQ(plain.counters().stall_cycles,
                   cached.counters().stall_cycles);
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 4u);
}

TEST(ResolveCache, ThreadClampBoundaryIsConsistent) {
  // Timing and counters both clamp concurrency to cpu.max_threads(): a
  // phase at the boundary and one oversubscribed past it must behave
  // identically end to end (and share a cache entry).
  SystemConfig cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  const int max = cfg.cpu.max_threads();
  double now[2];
  double cycles[2];
  int i = 0;
  ResolveCache cache(1);
  for (const int threads : {max, 2 * max}) {
    MemorySystem sys(cfg);
    sys.set_resolve_cache(&cache);
    const auto id = sys.register_buffer("b", 8 * MiB);
    (void)sys.submit(PhaseBuilder("p")
                         .threads(threads)
                         .flops(1e9)
                         .stream(seq_read(id, 1 * GiB))
                         .build());
    now[i] = sys.now();
    cycles[i] = sys.counters().cycles_active;
    ++i;
  }
  EXPECT_DOUBLE_EQ(now[0], now[1]);
  EXPECT_DOUBLE_EQ(cycles[0], cycles[1]);
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);  // one entry serves both
  EXPECT_EQ(s.hits, 1u);
}

TEST(ResolveCache, SweepExportsAreByteIdenticalAcrossModesAndJobs) {
  // End-to-end determinism: the reference sweep (cache off, serial) must
  // produce byte-identical CSV, Chrome-trace and metrics exports to a
  // shared-cache parallel sweep and a per-run-cache sweep.
  SweepSpec ref;
  ref.app = "stream";
  ref.modes = {Mode::kDramOnly, Mode::kCachedNvm, Mode::kUncachedNvm};
  ref.threads = {12, 24};
  ref.jobs = 1;
  ref.telemetry = true;
  ref.resolve_cache = ResolveCacheMode::kOff;
  const auto base = run_sweep(ref);

  SweepSpec shared_spec = ref;
  shared_spec.jobs = 4;
  shared_spec.resolve_cache = ResolveCacheMode::kShared;
  const auto shared_res = run_sweep(shared_spec);

  SweepSpec perrun_spec = ref;
  perrun_spec.resolve_cache = ResolveCacheMode::kPerRun;
  const auto perrun_res = run_sweep(perrun_spec);

  for (const SweepResult* r : {&shared_res, &perrun_res}) {
    EXPECT_EQ(sweep_csv(*r), sweep_csv(base));
    EXPECT_EQ(sweep_chrome_trace(*r), sweep_chrome_trace(base));
    EXPECT_EQ(sweep_metrics_csv(*r), sweep_metrics_csv(base));
    EXPECT_GT(r->cache_stats.hits, 0u);
  }
  // The Memory-mode cells of the shared sweep repeat one sampler
  // trajectory across the thread dimension: the stream memo must see it.
  EXPECT_GT(shared_res.stream_stats.hits, 0u);
  EXPECT_EQ(base.cache_stats.hits + base.cache_stats.misses, 0u);
  EXPECT_EQ(base.stream_stats.hits + base.stream_stats.misses, 0u);
}

/// Submit the same Memory-mode phase program (sequential, strided and
/// random streams, so tags and the RNG all participate) to `sys`.
void run_cached_program(MemorySystem& sys) {
  const auto a = sys.register_buffer("a", 8 * MiB);
  const auto b = sys.register_buffer("b", 24 * MiB);
  for (int i = 0; i < 3; ++i) {
    (void)sys.submit(PhaseBuilder("iter")
                         .threads(24)
                         .flops(1e8)
                         .stream(seq_read(a, 32 * MiB))
                         .stream(rand_read(b, 16 * MiB))
                         .stream(seq_write(b, 8 * MiB))
                         .build());
  }
}

TEST(StreamMemo, IdenticalTrajectoriesSkipTheWalkByteIdentically) {
  // Two Memory-mode systems sharing one cache replay the same stream
  // trajectory: the second run must hit the stream memo for every access
  // and still agree exactly with a memo-less reference.
  const SystemConfig cfg = SystemConfig::testbed(Mode::kCachedNvm);
  MemorySystem plain(cfg);
  run_cached_program(plain);

  ResolveCache cache(2);
  MemorySystem first(cfg);
  first.set_resolve_cache(&cache);
  run_cached_program(first);
  const auto after_first = cache.stream_stats();
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_GT(after_first.misses, 0u);

  MemorySystem second(cfg);
  second.set_resolve_cache(&cache);
  run_cached_program(second);
  const auto after_second = cache.stream_stats();
  EXPECT_EQ(after_second.hits, after_first.misses);  // every access hit

  for (MemorySystem* sys : {&first, &second}) {
    EXPECT_DOUBLE_EQ(sys->now(), plain.now());
    EXPECT_DOUBLE_EQ(sys->counters().cycles_active,
                     plain.counters().cycles_active);
    EXPECT_DOUBLE_EQ(sys->counters().imc_reads, plain.counters().imc_reads);
    EXPECT_DOUBLE_EQ(sys->counters().imc_writes,
                     plain.counters().imc_writes);
  }
}

TEST(StreamMemo, DivergentTrajectoryCatchesUpExactly) {
  // A trajectory that starts like a memoized one (hits, walks skipped)
  // and then diverges must rebuild the tag/RNG state it skipped: its
  // post-divergence outcomes have to match a memo-less run byte for byte.
  const SystemConfig cfg = SystemConfig::testbed(Mode::kCachedNvm);
  const auto diverged = [](MemorySystem& sys) {
    const auto a = sys.register_buffer("a", 8 * MiB);
    (void)sys.submit(PhaseBuilder("shared-prefix")
                         .threads(24)
                         .stream(rand_read(a, 16 * MiB))
                         .stream(seq_write(a, 8 * MiB))
                         .build());
    // Divergence point: different byte count than the memoized run.
    (void)sys.submit(PhaseBuilder("divergent")
                         .threads(24)
                         .stream(rand_read(a, 12 * MiB))
                         .build());
  };

  ResolveCache cache(1);
  MemorySystem seedrun(cfg);
  seedrun.set_resolve_cache(&cache);
  run_cached_program(seedrun);  // populates the memo with another program

  MemorySystem prefix_donor(cfg);
  prefix_donor.set_resolve_cache(&cache);
  {
    const auto a = prefix_donor.register_buffer("a", 8 * MiB);
    (void)prefix_donor.submit(PhaseBuilder("shared-prefix")
                                  .threads(24)
                                  .stream(rand_read(a, 16 * MiB))
                                  .stream(seq_write(a, 8 * MiB))
                                  .build());
  }

  MemorySystem plain(cfg);
  diverged(plain);
  MemorySystem memoized(cfg);
  memoized.set_resolve_cache(&cache);
  diverged(memoized);  // prefix hits, then the divergence forces catch-up

  EXPECT_GT(cache.stream_stats().hits, 0u);
  EXPECT_DOUBLE_EQ(memoized.now(), plain.now());
  EXPECT_DOUBLE_EQ(memoized.counters().imc_reads,
                   plain.counters().imc_reads);
  EXPECT_DOUBLE_EQ(memoized.counters().imc_writes,
                   plain.counters().imc_writes);
}

TEST(StreamMemo, ResetStaysConsistent) {
  // reset_stats(drop_cache=true) mid-run: the RNG keeps its state across
  // the reset, so memoized and memo-less systems must stay in lockstep
  // through it (the memo folds a reset marker and catches up first).
  const SystemConfig cfg = SystemConfig::testbed(Mode::kCachedNvm);
  const auto program = [](MemorySystem& sys) {
    const auto a = sys.register_buffer("a", 8 * MiB);
    (void)sys.submit(PhaseBuilder("before")
                         .threads(24)
                         .stream(rand_read(a, 16 * MiB))
                         .build());
    sys.reset_stats(/*drop_cache=*/true);
    (void)sys.submit(PhaseBuilder("after")
                         .threads(24)
                         .stream(rand_read(a, 16 * MiB))
                         .build());
  };
  MemorySystem plain(cfg);
  program(plain);

  ResolveCache cache(1);
  MemorySystem first(cfg);
  first.set_resolve_cache(&cache);
  program(first);
  MemorySystem second(cfg);  // replays first's trajectory out of the memo
  second.set_resolve_cache(&cache);
  program(second);

  for (MemorySystem* sys : {&first, &second}) {
    EXPECT_DOUBLE_EQ(sys->now(), plain.now());
    EXPECT_DOUBLE_EQ(sys->counters().imc_reads, plain.counters().imc_reads);
  }
  EXPECT_GT(cache.stream_stats().hits, 0u);
}

TEST(ResolveCache, ShardedMemoStatsStayConsistentUnderConcurrentSweeps) {
  // Regression: the gauge-publication path (stats()/publish()) used to
  // read global relaxed atomics while the maps were mutated under shard
  // mutexes, so a publish racing a sweep could observe an entry whose
  // miss was not counted yet.  Counters now live inside their shard and
  // are read under the same lock, making every snapshot per-shard
  // consistent: `entries + evictions <= misses` must hold at all times
  // (every entry stems from a counted miss).  Run under TSan in CI.
  ShardedMemo<int> memo(/*shards=*/4, /*max_entries=*/64);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};

  std::thread observer([&] {
    MetricsRegistry gauges;
    while (!stop.load(std::memory_order_acquire)) {
      const ResolveCacheStats s = memo.stats();
      if (s.entries + s.evictions > s.misses) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
      if (s.hit_rate() < 0.0 || s.hit_rate() > 1.0) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
      memo.publish(gauges, "resolve_cache");
    }
  });

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 4000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&memo, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        ResolveKey key;
        key.add_word(static_cast<std::uint64_t>(w) << 32);
        key.add_word(static_cast<std::uint64_t>(i));
        int value = 0;
        if (!memo.lookup(key, &value)) {
          memo.insert(key, i);  // lookup-miss then insert: the real flow
        }
        // Re-read a recent key so hits accrue too.
        (void)memo.lookup(key, &value);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  observer.join();

  EXPECT_EQ(violations.load(), 0u);
  // After quiescence the totals are exact: every op was one lookup-miss
  // (or hit after an eviction refill) plus one lookup-hit.
  const ResolveCacheStats s = memo.stats();
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(2 * kWriters * kOpsPerWriter));
  EXPECT_LE(s.entries + s.evictions, s.misses);
}

}  // namespace
}  // namespace nvms
