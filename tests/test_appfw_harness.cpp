// Tests for the application framework (AppContext, RunRecorder,
// finalize_result), the registry, and the report rendering helpers.
#include <gtest/gtest.h>

#include "appfw/result.hpp"
#include "harness/registry.hpp"
#include "harness/ascii_plot.hpp"
#include "harness/report.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

SystemConfig tiny() {
  SystemConfig cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  return cfg;
}

TEST(AppConfig, Validation) {
  AppConfig cfg;
  cfg.threads = 0;
  MemorySystem sys(tiny());
  EXPECT_THROW(AppContext(sys, cfg), ConfigError);
  cfg.threads = 4;
  cfg.size_scale = -1.0;
  EXPECT_THROW(AppContext(sys, cfg), ConfigError);
  cfg.size_scale = 1.0;
  cfg.iterations = -2;
  EXPECT_THROW(AppContext(sys, cfg), ConfigError);
}

TEST(AppContext, AllocHonoursPlacementPlan) {
  MemorySystem sys(tiny());
  PlacementPlan plan;
  plan.set("hot", Placement::kDram);
  AppConfig cfg;
  cfg.placement = &plan;
  AppContext ctx(sys, cfg);
  auto hot = ctx.alloc<double>("hot", 128);
  auto other = ctx.alloc<double>("other", 128);
  EXPECT_EQ(hot.placement(), Placement::kDram);
  EXPECT_EQ(other.placement(), Placement::kAuto);
}

TEST(AppContext, VirtualFootprintAlloc) {
  MemorySystem sys(tiny());
  AppConfig cfg;
  AppContext ctx(sys, cfg);
  auto buf = ctx.alloc<double>("big", 64, 1 << 20);
  EXPECT_EQ(buf.size(), 64u);                      // host elements
  EXPECT_EQ(buf.bytes(), (1u << 20) * sizeof(double));  // simulated bytes
  EXPECT_THROW(ctx.alloc<double>("bad", 128, 64), ConfigError);
}

TEST(AppContext, RngIsSeeded) {
  MemorySystem sys1(tiny());
  MemorySystem sys2(tiny());
  AppConfig cfg;
  cfg.seed = 99;
  AppContext a(sys1, cfg);
  AppContext b(sys2, cfg);
  EXPECT_EQ(a.rng()(), b.rng()());
}

TEST(RunRecorder, CollectsPerPhaseSamples) {
  MemorySystem sys(tiny());
  AppConfig cfg;
  AppContext ctx(sys, cfg);
  auto buf = ctx.alloc<double>("x", 1 << 16);
  ctx.run(PhaseBuilder("first")
              .threads(8)
              .flops(1e8)
              .stream(seq_read(buf.id(), 16 * MiB))
              .build());
  ctx.run(PhaseBuilder("second")
              .threads(8)
              .stream(seq_write(buf.id(), 4 * MiB))
              .build());
  const auto& samples = ctx.recorder().samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].phase, "first");
  EXPECT_GT(samples[0].delta.instructions, 1e8);
  EXPECT_GT(samples[0].ipc(), 0.0);
  EXPECT_GT(samples[1].delta.imc_writes, 0.0);
  EXPECT_DOUBLE_EQ(samples[1].delta.imc_reads, 0.0);
  // samples tile the virtual timeline
  EXPECT_DOUBLE_EQ(samples[0].t0, 0.0);
  EXPECT_DOUBLE_EQ(samples[0].t1, samples[1].t0);
  EXPECT_NEAR(ctx.recorder().recorded_time(), sys.now(), 1e-12);
  const auto total = ctx.recorder().total();
  EXPECT_DOUBLE_EQ(total.instructions, samples[0].delta.instructions +
                                           samples[1].delta.instructions);
}

TEST(FinalizeResult, CopiesRunState) {
  MemorySystem sys(tiny());
  AppConfig cfg;
  AppContext ctx(sys, cfg);
  auto buf = ctx.alloc<double>("x", 1 << 16);
  ctx.run(PhaseBuilder("p").threads(4).stream(seq_read(buf.id(), MiB)).build());
  const auto r = finalize_result(ctx, "demo");
  EXPECT_EQ(r.app, "demo");
  EXPECT_EQ(r.mode, "uncached-nvm");
  EXPECT_DOUBLE_EQ(r.runtime, sys.now());
  EXPECT_EQ(r.samples.size(), 1u);
  EXPECT_EQ(r.footprint, buf.bytes());
}

TEST(Registry, AllEightAppsPresent) {
  const auto& names = app_names();
  ASSERT_EQ(names.size(), 8u);
  // Table III presentation order (ascending slowdown).
  EXPECT_EQ(names.front(), "hacc");
  EXPECT_EQ(names.back(), "ft");
  for (const auto& n : names) {
    const App& app = lookup_app(n);
    EXPECT_EQ(app.name(), n);
    EXPECT_FALSE(app.dwarf().empty());
    EXPECT_FALSE(app.input_problem().empty());
  }
}

TEST(Registry, UnknownAppThrows) {
  EXPECT_THROW(lookup_app("linpack"), ConfigError);
  EXPECT_THROW(run_app("nope", Mode::kDramOnly, AppConfig{}), ConfigError);
}

TEST(Report, TraceTableShape) {
  MemorySystem sys(tiny());
  const auto id = sys.register_buffer("b", MiB);
  (void)sys.submit(
      PhaseBuilder("p").threads(8).stream(seq_read(id, 256 * MiB)).build());
  const auto table = render_trace_table(sys.traces(), 6);
  // header + separator + 6 rows
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 8);
  const auto csv = render_trace_csv(sys.traces(), 6);
  EXPECT_NE(csv.find("t_s,dram_read_gbs"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);
}

TEST(Report, PhaseShareFormatting) {
  MemorySystem sys(tiny());
  const auto id = sys.register_buffer("b", MiB);
  (void)sys.submit(
      PhaseBuilder("alpha").threads(8).stream(seq_read(id, MiB)).build());
  (void)sys.submit(
      PhaseBuilder("beta").threads(8).stream(seq_read(id, MiB)).build());
  EXPECT_EQ(phase_share(sys.traces(), "alpha"), "50%");
}

TEST(StepHook, InvokedEveryTimestep) {
  MemorySystem sys(tiny());
  AppConfig cfg;
  cfg.iterations = 6;
  int calls = 0;
  cfg.step_hook = [&calls](MemorySystem&, int, BufferId, std::uint64_t) {
    ++calls;
  };
  AppContext ctx(sys, cfg);
  (void)lookup_app("laghos").run(ctx);
  EXPECT_EQ(calls, 6);
}

TEST(AsciiPlot, RendersCurveAndLegend) {
  TimeSeries ts;
  ts.add_segment(0.0, 0.5, gbps(10));
  ts.add_segment(0.5, 1.0, gbps(40));
  const auto plot = ascii_plot({{"read", &ts, '*'}}, 40, 8);
  EXPECT_NE(plot.find("[*] read"), std::string::npos);
  EXPECT_NE(plot.find("40.0 |"), std::string::npos);
  // 8 canvas rows + axis + legend
  EXPECT_EQ(std::count(plot.begin(), plot.end(), '\n'), 10);
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(AsciiPlot, Validation) {
  EXPECT_THROW(ascii_plot({}), ConfigError);
  TimeSeries ts;
  ts.add_segment(0.0, 1.0, 1.0);
  EXPECT_THROW(ascii_plot({{"x", &ts, '*'}}, 4, 2), ConfigError);
}

}  // namespace
}  // namespace nvms
