// Tests for the worker thread pool and the parallel-for helpers: task
// completion, future values, exception propagation, nested submission
// safety and the serial fallback.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "simcore/error.hpp"
#include "simcore/thread_pool.hpp"

namespace nvms {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      (void)pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, FuturesCarryReturnValues) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 16; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, FuturesPropagateExceptions) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw ConfigError("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), ConfigError);
}

TEST(ThreadPool, WorkersKnowTheirIndex) {
  EXPECT_EQ(ThreadPool::current_worker(), -1);  // not a pool thread
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(pool.submit([] { return ThreadPool::current_worker(); }));
  }
  for (auto& f : futures) {
    const int w = f.get();
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 3);
  }
  EXPECT_EQ(ThreadPool::current_worker(), -1);  // unchanged on main
}

TEST(ThreadPool, DefaultJobsIsPositive) {
  EXPECT_GE(ThreadPool::default_jobs(), 1);
}

TEST(ThreadPool, RejectsNonPositiveSize) {
  EXPECT_THROW(ThreadPool(0), ConfigError);
  EXPECT_THROW(ThreadPool(-3), ConfigError);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> visits(257);
  parallel_for_index(visits.size(),
                     [&](std::size_t i) { visits[i].fetch_add(1); }, 4);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, ForEachMutatesItemsInPlace) {
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  parallel_for_each(items, [](int& x) { x *= 2; }, 8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(items[i], 2 * i);
}

TEST(ParallelFor, SerialFallbackPreservesIndexOrder) {
  std::vector<std::size_t> order;
  parallel_for_index(10, [&](std::size_t i) { order.push_back(i); },
                     /*jobs=*/1);
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, RethrowsLowestIndexExceptionAfterCompletion) {
  std::atomic<int> completed{0};
  try {
    parallel_for_index(
        16,
        [&](std::size_t i) {
          if (i == 3) throw ConfigError("task 3");
          if (i == 11) throw Error("task 11");
          completed.fetch_add(1);
        },
        4);
    FAIL() << "expected a rethrow";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("task 3"), std::string::npos);
  }
  // every non-throwing task still ran to completion
  EXPECT_EQ(completed.load(), 14);
}

TEST(ParallelFor, NestedFanOutDoesNotDeadlock) {
  // Each outer task fans out again; the inner call uses its own private
  // pool, so this completes for any worker count.
  std::atomic<int> count{0};
  parallel_for_index(
      4,
      [&](std::size_t) {
        parallel_for_index(4, [&](std::size_t) { count.fetch_add(1); }, 2);
      },
      2);
  EXPECT_EQ(count.load(), 16);
}

TEST(ParallelFor, TasksMaySubmitFollowUpWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    std::vector<std::future<std::future<void>>> seconds;
    for (int i = 0; i < 8; ++i) {
      seconds.push_back(pool.submit([&pool, &count] {
        count.fetch_add(1);
        return pool.submit([&count] { count.fetch_add(1); });
      }));
    }
    for (auto& s : seconds) s.get().get();
  }
  EXPECT_EQ(count.load(), 16);
}

TEST(ParallelFor, ZeroItemsIsANoOp) {
  parallel_for_index(0, [](std::size_t) { FAIL(); }, 4);
  std::vector<int> empty;
  parallel_for_each(empty, [](int&) { FAIL(); }, 4);
}

}  // namespace
}  // namespace nvms
