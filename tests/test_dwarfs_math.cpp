// Numerical-kernel correctness tests for the dwarf mini-apps: the FFT,
// blocked GEMM, banded LU, multigrid, AMR wave, and Lagrangian hydro host
// kernels all compute real answers that are verified here against
// reference implementations and physical invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "dwarfs/dense/scalapack.hpp"
#include "dwarfs/laghos/laghos.hpp"
#include "dwarfs/nbody/hacc.hpp"
#include "dwarfs/sgrid/hypre.hpp"
#include "dwarfs/sparse/superlu.hpp"
#include "dwarfs/spectral/ft.hpp"
#include "dwarfs/ugrid/boxlib.hpp"
#include "simcore/rng.hpp"

namespace nvms {
namespace {

// ---------- FFT ----------------------------------------------------------

std::vector<std::complex<double>> naive_dft(
    const std::vector<std::complex<double>>& in, int sign) {
  const std::size_t n = in.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> sum{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = static_cast<double>(sign) * 2.0 * std::numbers::pi *
                         static_cast<double>(k * j) / static_cast<double>(n);
      sum += in[j] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    out[k] = sum;
  }
  return out;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<std::complex<double>> data(n);
  for (auto& c : data) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto expect = naive_dft(data, -1);
  fft1d(data.data(), n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(data[i].real(), expect[i].real(), 1e-9) << "i=" << i;
    EXPECT_NEAR(data[i].imag(), expect[i].imag(), 1e-9) << "i=" << i;
  }
}

TEST_P(FftSizes, InverseRoundTrip) {
  const std::size_t n = GetParam();
  Rng rng(n + 1);
  std::vector<std::complex<double>> data(n);
  for (auto& c : data) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto orig = data;
  fft1d(data.data(), n, -1);
  fft1d(data.data(), n, +1);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(data[i].real() / static_cast<double>(n), orig[i].real(),
                1e-10);
    EXPECT_NEAR(data[i].imag() / static_cast<double>(n), orig[i].imag(),
                1e-10);
  }
}

TEST_P(FftSizes, Parseval) {
  const std::size_t n = GetParam();
  Rng rng(n + 2);
  std::vector<std::complex<double>> data(n);
  for (auto& c : data) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  double time_energy = 0.0;
  for (const auto& c : data) time_energy += std::norm(c);
  fft1d(data.data(), n, -1);
  double freq_energy = 0.0;
  for (const auto& c : data) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(6);
  EXPECT_THROW(fft1d(data.data(), 6, -1), ConfigError);
}

TEST(Fft3d, DeltaTransformsToConstant) {
  const std::size_t n = 8;
  std::vector<std::complex<double>> cube(n * n * n, {0.0, 0.0});
  cube[0] = {1.0, 0.0};
  fft3d(cube, n, -1);
  for (const auto& c : cube) {
    EXPECT_NEAR(c.real(), 1.0, 1e-10);
    EXPECT_NEAR(c.imag(), 0.0, 1e-10);
  }
}

TEST(Fft3d, RoundTrip) {
  const std::size_t n = 8;
  Rng rng(3);
  std::vector<std::complex<double>> cube(n * n * n);
  for (auto& c : cube) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto orig = cube;
  fft3d(cube, n, -1);
  fft3d(cube, n, +1);
  const double scale = static_cast<double>(n * n * n);
  for (std::size_t i = 0; i < cube.size(); ++i) {
    EXPECT_NEAR(cube[i].real() / scale, orig[i].real(), 1e-9);
  }
}

// ---------- blocked GEMM -------------------------------------------------

class GemmShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(GemmShapes, MatchesNaiveTripleLoop) {
  const auto [n, nb] = GetParam();
  Rng rng(n * 31 + nb);
  std::vector<double> a(n * n), b(n * n), c(n * n, 0.0), ref(n * n, 0.0);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  blocked_gemm(a.data(), b.data(), c.data(), n, nb);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t j = 0; j < n; ++j)
        ref[i * n + j] += a[i * n + k] * b[k * n + j];
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{16, 4},
                      std::pair<std::size_t, std::size_t>{33, 8},
                      std::pair<std::size_t, std::size_t>{64, 64},
                      std::pair<std::size_t, std::size_t>{50, 7}));

TEST(Gemm, RejectsBadBlock) {
  std::vector<double> a(16), b(16), c(16);
  EXPECT_THROW(blocked_gemm(a.data(), b.data(), c.data(), 4, 0), ConfigError);
  EXPECT_THROW(blocked_gemm(a.data(), b.data(), c.data(), 4, 5), ConfigError);
}

// ---------- banded LU ----------------------------------------------------

class BandShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(BandShapes, SolveResidualSmall) {
  const auto [n, band] = GetParam();
  Rng rng(n + band);
  const std::size_t w = 2 * band + 1;
  std::vector<double> a(n * w);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < w; ++c) a[i * w + c] = rng.uniform(-1, 1);
    a[i * w + band] = 3.0 * static_cast<double>(w);  // diagonal dominance
  }
  const auto a_orig = a;
  std::vector<double> rhs(n);
  for (auto& v : rhs) v = rng.uniform(-1, 1);

  banded_lu_factor(a, n, band);
  const auto x = banded_lu_solve(a, n, band, rhs);
  const auto ax = banded_matvec(a_orig, n, band, x);
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) err += (ax[i] - rhs[i]) * (ax[i] - rhs[i]);
  EXPECT_LT(std::sqrt(err), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Bands, BandShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{32, 2},
                      std::pair<std::size_t, std::size_t>{100, 8},
                      std::pair<std::size_t, std::size_t>{257, 16},
                      std::pair<std::size_t, std::size_t>{64, 1}));

TEST(BandedLu, RejectsWrongStorage) {
  std::vector<double> a(10);
  EXPECT_THROW(banded_lu_factor(a, 4, 2), ConfigError);
}

// ---------- multigrid ----------------------------------------------------

TEST(Multigrid, ResidualDecreases) {
  const std::size_t n = 32;
  std::vector<double> u(n * n * n, 0.0);
  std::vector<double> rhs(n * n * n, 0.0);
  rhs[(n / 2) + n * ((n / 2) + n * (n / 2))] = 1.0;
  const double res4 = poisson_mg_solve(n, 4, 3, 2, u, rhs);
  std::vector<double> u2(n * n * n, 0.0);
  const double res12 = poisson_mg_solve(n, 12, 3, 2, u2, rhs);
  EXPECT_LT(res4, 1.0);
  EXPECT_LT(res12, res4);  // more cycles converge further
}

TEST(Multigrid, SolutionPeaksAtSource) {
  const std::size_t n = 16;
  std::vector<double> u(n * n * n, 0.0);
  std::vector<double> rhs(n * n * n, 0.0);
  const std::size_t center = (n / 2) + n * ((n / 2) + n * (n / 2));
  rhs[center] = 1.0;
  (void)poisson_mg_solve(n, 10, 2, 2, u, rhs);
  const auto maxpos =
      std::max_element(u.begin(), u.end()) - u.begin();
  EXPECT_EQ(static_cast<std::size_t>(maxpos), center);
  EXPECT_GT(u[center], 0.0);
}

TEST(Multigrid, RejectsBadDims) {
  std::vector<double> u, rhs;
  EXPECT_THROW(poisson_mg_solve(7, 1, 1, 1, u, rhs), ConfigError);
  EXPECT_THROW(poisson_mg_solve(4, 1, 1, 1, u, rhs), ConfigError);
}

// ---------- AMR wave -----------------------------------------------------

TEST(Wave, FrontMovesOutward) {
  WaveState s = make_wave(96, 9.6);
  const double r0 = wave_front_radius(s);
  for (int i = 0; i < 20; ++i) wave_step(s, 0.4, 0.5, 0.35);
  const double r1 = wave_front_radius(s);
  EXPECT_GT(r0, 0.0);
  EXPECT_GT(r1, r0 + 1.0);
}

TEST(Wave, ConcentrationStaysBounded) {
  WaveState s = make_wave(64, 6.0);
  for (int i = 0; i < 30; ++i) wave_step(s, 0.4, 0.5, 0.35);
  for (double c : s.c) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(Wave, ReactionGrowsMass) {
  WaveState s = make_wave(64, 6.0);
  const double m0 = s.total_mass();
  for (int i = 0; i < 10; ++i) wave_step(s, 0.4, 0.5, 0.35);
  EXPECT_GT(s.total_mass(), m0);  // logistic growth behind the front
}

// ---------- N-body cell list ----------------------------------------------

TEST(CellList, MomentumConservedExactly) {
  ParticleSet s = make_particles(2000, 17);
  const auto p0 = total_momentum(s);
  for (int step = 0; step < 20; ++step) {
    cell_list_forces(s, 0.1);
    leapfrog_step(s, 1e-3);
  }
  const auto p1 = total_momentum(s);
  for (int k = 0; k < 3; ++k) {
    EXPECT_NEAR(p1[static_cast<std::size_t>(k)],
                p0[static_cast<std::size_t>(k)], 1e-9);
  }
}

TEST(CellList, ForcesAreNonTrivial) {
  ParticleSet s = make_particles(500, 3);
  cell_list_forces(s, 0.15);
  double mag = 0.0;
  for (double a : s.acc) mag += std::abs(a);
  EXPECT_GT(mag, 0.0);
}

TEST(CellList, CutoffLimitsInteractions) {
  // Two particles farther apart than the cutoff feel no force.
  ParticleSet s;
  s.pos = {0.1, 0.1, 0.1, 0.6, 0.6, 0.6};
  s.vel.assign(6, 0.0);
  s.acc.assign(6, 0.0);
  cell_list_forces(s, 0.1);
  for (double a : s.acc) EXPECT_DOUBLE_EQ(a, 0.0);
}

TEST(CellList, PeriodicImageInteracts) {
  // Particles near opposite faces are close through the periodic boundary.
  ParticleSet s;
  s.pos = {0.01, 0.5, 0.5, 0.99, 0.5, 0.5};
  s.vel.assign(6, 0.0);
  s.acc.assign(6, 0.0);
  cell_list_forces(s, 0.1);
  // force along x, equal and opposite
  EXPECT_NE(s.acc[0], 0.0);
  EXPECT_NEAR(s.acc[0], -s.acc[3], 1e-12);
}

// ---------- Lagrangian hydro --------------------------------------------

TEST(Hydro, EnergyApproximatelyConserved) {
  HydroState s = make_sedov(256, 0.3);
  const double e0 = s.total_energy();
  for (int i = 0; i < 200; ++i) (void)hydro_step(s, 0.3);
  const double e1 = s.total_energy();
  EXPECT_NEAR(e1 / e0, 1.0, 0.05);  // explicit scheme: small drift allowed
}

TEST(Hydro, ShockPropagatesOutward) {
  HydroState s = make_sedov(256, 0.3);
  // let the shock form first, then verify it keeps moving outward
  for (int i = 0; i < 50; ++i) (void)hydro_step(s, 0.3);
  const double x0 = shock_position(s);
  for (int i = 0; i < 250; ++i) (void)hydro_step(s, 0.3);
  EXPECT_GT(shock_position(s), x0 + 0.02);
}

TEST(Hydro, DensityStaysPositive) {
  HydroState s = make_sedov(128, 0.5);
  for (int i = 0; i < 300; ++i) (void)hydro_step(s, 0.3);
  for (double r : s.rho) EXPECT_GT(r, 0.0);
  for (double e : s.e) EXPECT_GT(e, 0.0);
}

TEST(Hydro, DtRespectsCfl) {
  HydroState s = make_sedov(64, 0.3);
  const double dt1 = hydro_step(s, 0.2);
  HydroState s2 = make_sedov(64, 0.3);
  const double dt2 = hydro_step(s2, 0.4);
  EXPECT_NEAR(dt2 / dt1, 2.0, 1e-9);
}

TEST(Hydro, RejectsTinyMesh) {
  EXPECT_THROW(make_sedov(4, 0.1), ConfigError);
}

}  // namespace
}  // namespace nvms
