// Integration tests: the paper's headline findings as assertions over the
// whole stack (apps + memory simulator + harness).
//
// These encode the *shape* requirements of the reproduction: tier
// membership (Table III), cached-NVM efficiency (Fig. 2), write throttling
// phase flips (Fig. 5), concurrency divergence (Figs. 6-7), large-problem
// behaviour (Fig. 3), and write-aware placement (Fig. 12).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "harness/registry.hpp"
#include "mem/space.hpp"
#include "placement/write_aware.hpp"
#include "prof/data_profile.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

AppConfig base_cfg(int threads = 36) {
  AppConfig cfg;
  cfg.threads = threads;
  return cfg;
}

double slowdown(const std::string& app, int threads = 36) {
  const auto dram = run_app(app, Mode::kDramOnly, base_cfg(threads));
  const auto nvm = run_app(app, Mode::kUncachedNvm, base_cfg(threads));
  return nvm.runtime / dram.runtime;
}

// ---------- generic invariants over all eight applications ----------------

class AllApps : public ::testing::TestWithParam<std::string> {};

TEST_P(AllApps, RunsOnEveryMemoryMode) {
  for (Mode mode : kAllModes) {
    const auto r = run_app(GetParam(), mode, base_cfg());
    EXPECT_GT(r.runtime, 0.0) << to_string(mode);
    EXPECT_GT(r.fom, 0.0) << to_string(mode);
    EXPECT_FALSE(r.fom_unit.empty());
    EXPECT_GT(r.footprint, 0u);
    EXPECT_FALSE(r.samples.empty());
    EXPECT_GT(r.counters.instructions, 0.0);
    EXPECT_GT(r.counters.ipc(), 0.0);
  }
}

TEST_P(AllApps, ChecksumIndependentOfMemoryMode) {
  // The numerics must not depend on the simulated memory organization.
  const auto dram = run_app(GetParam(), Mode::kDramOnly, base_cfg());
  const auto cached = run_app(GetParam(), Mode::kCachedNvm, base_cfg());
  const auto uncached = run_app(GetParam(), Mode::kUncachedNvm, base_cfg());
  EXPECT_DOUBLE_EQ(dram.checksum, cached.checksum);
  EXPECT_DOUBLE_EQ(dram.checksum, uncached.checksum);
}

TEST_P(AllApps, DeterministicAcrossRuns) {
  const auto a = run_app(GetParam(), Mode::kUncachedNvm, base_cfg());
  const auto b = run_app(GetParam(), Mode::kUncachedNvm, base_cfg());
  EXPECT_DOUBLE_EQ(a.runtime, b.runtime);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST_P(AllApps, FootprintWithinPaperRange) {
  // "Input problems have a memory footprint fit in DRAM capacity (50-85%)"
  // — we allow a slightly wider band (HACC is naturally lean).
  const auto r = run_app(GetParam(), Mode::kDramOnly, base_cfg());
  const double frac =
      static_cast<double>(r.footprint) /
      static_cast<double>(SystemConfig::testbed(Mode::kDramOnly).dram.capacity);
  EXPECT_GE(frac, 0.40) << r.app;
  EXPECT_LE(frac, 0.95) << r.app;
}

TEST_P(AllApps, DramIsNeverSlowerThanUncachedNvm) {
  const auto dram = run_app(GetParam(), Mode::kDramOnly, base_cfg());
  const auto nvm = run_app(GetParam(), Mode::kUncachedNvm, base_cfg());
  EXPECT_LE(dram.runtime, nvm.runtime * 1.001);
}

TEST_P(AllApps, CachedNvmWithin35PercentOfDram) {
  // Fig. 2: cached-NVM is within 10% for most apps, worst case 28% (Hypre).
  const auto dram = run_app(GetParam(), Mode::kDramOnly, base_cfg());
  const auto cached = run_app(GetParam(), Mode::kCachedNvm, base_cfg());
  EXPECT_LE(cached.runtime / dram.runtime, 1.35) << GetParam();
}

TEST_P(AllApps, ScalingDownTheProblemShrinksFootprint) {
  AppConfig small = base_cfg();
  small.size_scale = 0.5;
  const auto r_small = run_app(GetParam(), Mode::kUncachedNvm, small);
  const auto r_full = run_app(GetParam(), Mode::kUncachedNvm, base_cfg());
  EXPECT_LT(r_small.footprint, r_full.footprint);
}

INSTANTIATE_TEST_SUITE_P(EveryDwarf, AllApps,
                         ::testing::ValuesIn(app_names()));

// ---------- Table III: three tiers of sensitivity --------------------------

TEST(TableIII, InsensitiveTier) {
  EXPECT_LT(slowdown("hacc"), 1.15);
  EXPECT_LT(slowdown("laghos"), 1.6);
}

TEST(TableIII, ScaledTier) {
  for (const std::string app : {"scalapack", "xsbench", "hypre", "superlu"}) {
    const double s = slowdown(app);
    EXPECT_GE(s, 2.0) << app;
    EXPECT_LE(s, 6.5) << app;
  }
}

TEST(TableIII, BottleneckedTier) {
  EXPECT_GT(slowdown("boxlib"), 7.0);
  EXPECT_GT(slowdown("ft"), 10.0);
}

TEST(TableIII, WriteRatios) {
  // XSBench ~0%, Hypre <=10%, FT the highest (~39%).
  std::map<std::string, double> ratio;
  for (const std::string app : {"xsbench", "hypre", "ft", "hacc"}) {
    const auto r = run_app(app, Mode::kUncachedNvm, base_cfg());
    const double rd = r.traces.avg_read_bw();
    const double wr = r.traces.avg_write_bw();
    ratio[app] = wr / (rd + wr);
  }
  EXPECT_LT(ratio["xsbench"], 0.01);
  EXPECT_LT(ratio["hypre"], 0.10);
  EXPECT_GT(ratio["ft"], 0.30);
  EXPECT_GT(ratio["hacc"], 0.20);
}

// ---------- Fig. 5: write throttling flips SuperLU's phases ---------------

TEST(WriteThrottling, SuperLuPhaseFlip) {
  const auto dram = run_app("superlu", Mode::kDramOnly, base_cfg());
  const auto nvm = run_app("superlu", Mode::kUncachedNvm, base_cfg());
  const double share_dram = dram.traces.phase_time_fraction("factor");
  const double share_nvm = nvm.traces.phase_time_fraction("factor");
  EXPECT_NEAR(share_dram, 0.20, 0.10);
  EXPECT_GT(share_nvm, 0.60);
}

TEST(WriteThrottling, LaghosKeepsItsComposition) {
  const auto dram = run_app("laghos", Mode::kDramOnly, base_cfg());
  const auto nvm = run_app("laghos", Mode::kUncachedNvm, base_cfg());
  EXPECT_NEAR(dram.traces.phase_time_fraction("assembly"),
              nvm.traces.phase_time_fraction("assembly"), 0.08);
}

// ---------- Fig. 6/7: concurrency contention -------------------------------

TEST(Concurrency, FtGapBetweenDramAndNvm) {
  auto perf_ratio = [](Mode mode) {
    const auto lo = run_app("ft", mode, base_cfg(12));
    const auto hi = run_app("ft", mode, base_cfg(36));
    return hi.fom / lo.fom;
  };
  const double dram_ratio = perf_ratio(Mode::kDramOnly);
  const double nvm_ratio = perf_ratio(Mode::kUncachedNvm);
  EXPECT_LT(dram_ratio, 1.0);            // FT scales poorly even on DRAM
  EXPECT_LT(nvm_ratio, dram_ratio - 0.1);  // the NVM contention gap
}

TEST(Concurrency, HaccAndXsbenchImprove) {
  for (const std::string app : {"hacc", "xsbench"}) {
    const auto lo = run_app(app, Mode::kUncachedNvm, base_cfg(12));
    const auto hi = run_app(app, Mode::kUncachedNvm, base_cfg(36));
    const double ratio = hi.higher_is_better ? hi.fom / lo.fom
                                             : lo.runtime / hi.runtime;
    EXPECT_GT(ratio, 1.3) << app;
  }
}

TEST(Concurrency, FtWritesDivergeDown) {
  const auto lo = run_app("ft", Mode::kUncachedNvm, base_cfg(12));
  const auto hi = run_app("ft", Mode::kUncachedNvm, base_cfg(36));
  EXPECT_GT(lo.traces.nvm_write.peak(), hi.traces.nvm_write.peak());
}

// ---------- Fig. 3: cached-NVM enables large problems ----------------------

TEST(LargeProblems, DramOnlyRejectsOversizedProblem) {
  AppConfig cfg = base_cfg();
  cfg.size_scale = 3.0;
  EXPECT_THROW(run_app("hypre", Mode::kDramOnly, cfg), CapacityError);
}

TEST(LargeProblems, CachedBeatsUncachedBeyondDram) {
  AppConfig cfg = base_cfg();
  cfg.size_scale = 4.0;  // BoxLib at ~2.8x DRAM capacity
  const auto un = run_app("boxlib", Mode::kUncachedNvm, cfg);
  const auto ca = run_app("boxlib", Mode::kCachedNvm, cfg);
  EXPECT_GT(un.runtime / ca.runtime, 1.8);
}

TEST(LargeProblems, SuperLuSustainsFactorRate) {
  // Fig. 3a: factor Mflop/s stays in a narrow band from kim2 (0.06x DRAM)
  // to nlpkkt120 (5.1x DRAM).
  double lo = 1e300;
  double hi = 0.0;
  for (double scale : {6.0 / 50.0, 1.0, 490.0 / 50.0}) {
    AppConfig cfg = base_cfg();
    cfg.size_scale = scale;
    const auto r = run_app("superlu", Mode::kCachedNvm, cfg);
    lo = std::min(lo, r.fom);
    hi = std::max(hi, r.fom);
  }
  EXPECT_LT(hi / lo, 1.5);
}

// ---------- Fig. 12: write-aware placement ---------------------------------

TEST(WriteAware, ScalapackReachesDramLikePerformance) {
  const auto sys_cfg = SystemConfig::testbed(Mode::kUncachedNvm);
  AppConfig cfg = base_cfg();

  MemorySystem prof_sys(sys_cfg);
  AppContext prof_ctx(prof_sys, cfg);
  (void)lookup_app("scalapack").run(prof_ctx);
  const auto wa =
      write_aware_plan(collect_data_profile(prof_sys),
                       sys_cfg.dram.capacity * 35 / 100);
  EXPECT_FALSE(wa.in_dram.empty());
  // The output matrix C must be among the promoted structures.
  bool has_c = false;
  for (const auto& n : wa.in_dram) has_c |= (n == "mat_c");
  EXPECT_TRUE(has_c);

  const auto dram = run_app("scalapack", Mode::kDramOnly, cfg);
  const auto uncached = run_app("scalapack", Mode::kUncachedNvm, cfg);
  AppConfig opt = cfg;
  opt.placement = &wa.plan;
  const auto optimized = run_app("scalapack", Mode::kUncachedNvm, opt);

  // >= 2x over plain uncached, within 20% of DRAM, <= 40% DRAM used.
  EXPECT_GT(uncached.runtime / optimized.runtime, 2.0);
  EXPECT_LT(optimized.runtime / dram.runtime, 1.2);
  EXPECT_LE(wa.dram_bytes, sys_cfg.dram.capacity * 40 / 100);
}

}  // namespace
}  // namespace nvms
