// nvmsimd service-layer tests (ctest label `serve`): admission control,
// the JSON reader, request validation, and the daemon end-to-end over a
// unix-domain socket — including the contract the whole layer exists
// for: a daemon response's "out" field is byte-identical to the one-shot
// CLI's stdout for the same query, and malformed input always comes back
// as a structured error, never a dead process.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cli/driver.hpp"
#include "harness/admission.hpp"
#include "serve/daemon.hpp"
#include "serve/jsonv.hpp"
#include "serve/request.hpp"

namespace nvms {
namespace {

// ---------- AdmissionQueue ---------------------------------------------------

TEST(AdmissionQueue, UrgentLanesDrainFirstFifoWithin) {
  AdmissionQueue<int> q(/*capacity=*/8);
  int a = 1, b = 2, c = 3, d = 4;
  EXPECT_TRUE(q.try_push(a, /*priority=*/5));
  EXPECT_TRUE(q.try_push(b, 5));
  EXPECT_TRUE(q.try_push(c, 0));  // urgent: jumps the batch lane
  EXPECT_TRUE(q.try_push(d, 9));
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_EQ(q.pop().value(), 1);  // FIFO within lane 5
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 4);
}

TEST(AdmissionQueue, FullQueueRejectsWithoutConsuming) {
  AdmissionQueue<std::string> q(/*capacity=*/1);
  std::string first = "first", second = "second";
  EXPECT_TRUE(q.try_push(first, 5));
  EXPECT_FALSE(q.try_push(second, 0));
  // The rejected item must stay intact — the daemon reuses it to build
  // the structured "queue_full" response (and to refund the budget).
  EXPECT_EQ(second, "second");
  EXPECT_EQ(q.pop().value(), "first");
}

TEST(AdmissionQueue, OutOfRangePrioritiesClampIntoLanes) {
  AdmissionQueue<int> q(/*capacity=*/4);
  int a = 1, b = 2;
  EXPECT_TRUE(q.try_push(a, -100));
  EXPECT_TRUE(q.try_push(b, 100));
  EXPECT_EQ(q.pop().value(), 1);  // clamped to lane 0
  EXPECT_EQ(q.pop().value(), 2);  // clamped to lane 9
}

TEST(AdmissionQueue, CloseDrainsThenSignalsShutdown) {
  AdmissionQueue<int> q(/*capacity=*/4);
  int a = 7;
  EXPECT_TRUE(q.try_push(a, 5));
  q.close();
  int rejected = 8;
  EXPECT_FALSE(q.try_push(rejected, 5));  // no admission after close
  EXPECT_EQ(q.pop().value(), 7);          // already-admitted work drains
  EXPECT_FALSE(q.pop().has_value());      // closed + empty -> worker exit
}

TEST(AdmissionQueue, PopBlocksUntilPushFromAnotherThread) {
  AdmissionQueue<int> q(/*capacity=*/2);
  std::thread producer([&q] {
    int v = 42;
    ASSERT_TRUE(q.try_push(v, 3));
  });
  EXPECT_EQ(q.pop().value(), 42);  // blocks until the producer lands
  producer.join();
}

// ---------- TokenBudget ------------------------------------------------------

TEST(TokenBudget, ChargesAtomicallyUpToTheAllowance) {
  TokenBudget b(/*per_client=*/10);
  EXPECT_TRUE(b.charge("alice", 6));
  EXPECT_FALSE(b.charge("alice", 5));  // all-or-nothing: 6+5 > 10
  EXPECT_TRUE(b.charge("alice", 4));
  EXPECT_EQ(b.remaining("alice"), 0u);
  EXPECT_FALSE(b.charge("alice", 1));
  // Tenancy is per client id: bob is untouched by alice's spend.
  EXPECT_TRUE(b.charge("bob", 10));
  EXPECT_EQ(b.clients(), 2u);
}

TEST(TokenBudget, RefundRestoresAllowance) {
  TokenBudget b(/*per_client=*/5);
  EXPECT_TRUE(b.charge("c", 5));
  b.refund("c", 2);
  EXPECT_EQ(b.remaining("c"), 2u);
  EXPECT_TRUE(b.charge("c", 2));
  b.refund("c", 100);  // clamped at zero, never underflows
  EXPECT_EQ(b.remaining("c"), 5u);
  b.refund("nobody", 3);  // unknown client: no-op
}

TEST(TokenBudget, ZeroAllowanceMeansUnlimited) {
  TokenBudget b(/*per_client=*/0);
  EXPECT_TRUE(b.charge("c", 1u << 30));
  EXPECT_TRUE(b.charge("c", 1u << 30));
  EXPECT_EQ(b.remaining("c"), UINT64_MAX);
}

// ---------- jsonv ------------------------------------------------------------

TEST(Jsonv, ParsesObjectsArraysAndScalars) {
  const auto r = json_parse(
      R"({"s":"hi","n":-1.5,"b":true,"z":null,"a":[1,2,3],"o":{"k":"v"}})");
  ASSERT_TRUE(r.value.has_value()) << r.error;
  const JsonValue& v = *r.value;
  EXPECT_EQ(v.find("s")->as_string(), "hi");
  EXPECT_DOUBLE_EQ(v.find("n")->as_number(), -1.5);
  EXPECT_TRUE(v.find("b")->as_bool());
  EXPECT_TRUE(v.find("z")->is_null());
  ASSERT_EQ(v.find("a")->elements().size(), 3u);
  EXPECT_DOUBLE_EQ(v.find("a")->elements()[1].as_number(), 2.0);
  EXPECT_EQ(v.find("o")->find("k")->as_string(), "v");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Jsonv, DecodesEscapesAndSurrogatePairs) {
  const auto r = json_parse(R"({"k":"a\"b\\c\né😀"})");
  ASSERT_TRUE(r.value.has_value()) << r.error;
  // é -> U+00E9 (2 UTF-8 bytes); the surrogate pair -> U+1F600 (4).
  EXPECT_EQ(r.value->find("k")->as_string(),
            std::string("a\"b\\c\n\xc3\xa9\xf0\x9f\x98\x80"));
}

TEST(Jsonv, DuplicateKeysKeepTheLastValue) {
  const auto r = json_parse(R"({"k":1,"k":2})");
  ASSERT_TRUE(r.value.has_value());
  EXPECT_DOUBLE_EQ(r.value->find("k")->as_number(), 2.0);
}

TEST(Jsonv, FailuresAreDiagnosticsNotExceptions) {
  for (const char* bad :
       {"", "not json", "{", "[1,", R"({"k":)", R"({"k":"\q"})",
        R"({"k":"\ud83d"})",  // lone surrogate
        "{} trailing", "1e999", "nulll"}) {
    const auto r = json_parse(bad);
    EXPECT_FALSE(r.value.has_value()) << bad;
    EXPECT_NE(r.error.find("at offset"), std::string::npos) << bad;
  }
}

TEST(Jsonv, DepthLimitStopsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 40; ++i) deep += "[";
  EXPECT_FALSE(json_parse(deep, /*max_depth=*/32).value.has_value());
  EXPECT_TRUE(json_parse("[[[[1]]]]", /*max_depth=*/5).value.has_value());
  EXPECT_FALSE(json_parse("[[[[1]]]]", /*max_depth=*/3).value.has_value());
}

// ---------- parse_request ----------------------------------------------------

TEST(ParseRequest, AcceptsAFullRequestAndComputesCost) {
  const auto p = parse_request(
      R"({"id":"r1","cmd":"sweep","target":"stream",)"
      R"("args":{"threads":"12,24","modes":"dram-only,uncached-nvm",)"
      R"("scale":0.25,"csv":true},"client":"alice","priority":2})");
  ASSERT_TRUE(p.request.has_value()) << p.error;
  const ServeRequest& r = *p.request;
  EXPECT_EQ(r.id, "r1");
  EXPECT_EQ(r.cmd, "sweep");
  ASSERT_EQ(r.positionals.size(), 1u);
  EXPECT_EQ(r.positionals[0], "stream");
  EXPECT_EQ(r.client, "alice");
  EXPECT_EQ(r.priority, 2);
  EXPECT_EQ(r.cost, 4u);  // 2 modes x 2 threads
  // JSON scalars arrive exactly as the CLI would have seen them in argv.
  const Options opt = options_from(r);
  EXPECT_EQ(opt.get("threads", ""), "12,24");
  EXPECT_DOUBLE_EQ(opt.get_double("scale", 0.0), 0.25);
  EXPECT_TRUE(opt.has("csv"));
}

TEST(ParseRequest, CostScalesWithTheCommand) {
  auto cost = [](const std::string& line) {
    const auto p = parse_request(line);
    EXPECT_TRUE(p.request.has_value()) << p.error;
    return p.request ? p.request->cost : ~0ull;
  };
  EXPECT_EQ(cost(R"({"cmd":"list"})"), 0u);
  EXPECT_EQ(cost(R"({"cmd":"run","target":"stream"})"), 1u);
  EXPECT_EQ(cost(R"({"cmd":"diff","targets":["stream","gups"]})"), 2u);
  EXPECT_EQ(cost(R"({"cmd":"optimize","target":"stream"})"), 4u);
  // Sweep defaults: 3 modes x 4 threads.
  EXPECT_EQ(cost(R"({"cmd":"sweep","target":"stream"})"), 12u);
  // Malformed CSV still costs its (lenient) cell count — the request is
  // admitted and then fails in the shared checked parser downstream.
  EXPECT_EQ(cost(R"({"cmd":"sweep","target":"stream",)"
                 R"("args":{"threads":"12,abc","modes":"dram-only"}})"),
            2u);
}

TEST(ParseRequest, PriorityClampsIntoTheLaneRange) {
  const auto lo = parse_request(R"({"cmd":"list","priority":-7})");
  ASSERT_TRUE(lo.request.has_value());
  EXPECT_EQ(lo.request->priority, 0);
  const auto hi = parse_request(R"({"cmd":"list","priority":99})");
  ASSERT_TRUE(hi.request.has_value());
  EXPECT_EQ(hi.request->priority, 9);
}

TEST(ParseRequest, MalformedShapesAreRejectedWithTheRecoveredId) {
  struct Case {
    const char* line;
    const char* code;
  };
  const std::vector<Case> cases = {
      {"not json at all", "malformed"},
      {"[1,2,3]", "malformed"},
      {"{}", "malformed"},                          // no cmd
      {R"({"cmd":42})", "malformed"},               // cmd not a string
      {R"({"cmd":"run","args":[1]})", "malformed"}, // args not an object
      {R"({"cmd":"run","args":{"k":[1]}})", "malformed"},  // non-scalar arg
      {R"({"cmd":"run","target":7})", "malformed"},
      {R"({"cmd":"run","targets":"stream"})", "malformed"},
      {R"({"cmd":"list","client":""})", "malformed"},
      {R"({"cmd":"list","priority":"high"})", "malformed"},
      {R"({"id":[1],"cmd":"list"})", "malformed"},  // id not a scalar
  };
  for (const Case& c : cases) {
    const auto p = parse_request(c.line);
    EXPECT_FALSE(p.request.has_value()) << c.line;
    EXPECT_EQ(p.code, c.code) << c.line;
    EXPECT_FALSE(p.error.empty()) << c.line;
  }
  // A rejected request still echoes the id it managed to recover.
  const auto p = parse_request(R"({"id":"r9","cmd":"run","target":7})");
  EXPECT_EQ(p.id, "r9");
}

TEST(ParseRequest, HostFileAccessIsForbidden) {
  // record/replay read+write host paths; never served.
  for (const char* line :
       {R"({"cmd":"record","target":"stream","args":{"out":"/tmp/x"}})",
        R"({"cmd":"replay","target":"stream"})",
        R"({"cmd":"frobnicate"})"}) {
    const auto p = parse_request(line);
    EXPECT_FALSE(p.request.has_value()) << line;
    EXPECT_EQ(p.code, "forbidden") << line;
  }
  // Server-side file options are stripped at the door...
  for (const char* key :
       {"trace", "trace-out", "metrics-out", "jsonl", "stats", "out"}) {
    EXPECT_TRUE(is_forbidden_option(key)) << key;
    const auto p = parse_request(std::string(R"({"cmd":"run","target":)") +
                                 R"("stream","args":{")" + key +
                                 R"(":"/tmp/x"}})");
    EXPECT_FALSE(p.request.has_value()) << key;
    EXPECT_EQ(p.code, "forbidden") << key;
  }
  // ...and so are targets that are not registered apps (no path probing).
  const auto p = parse_request(R"({"cmd":"run","target":"../etc/passwd"})");
  EXPECT_FALSE(p.request.has_value());
  EXPECT_EQ(p.code, "forbidden");
}

// ---------- daemon end-to-end ------------------------------------------------

/// Raw synchronous JSONL client over a unix socket.
class RawClient {
 public:
  explicit RawClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  bool send_raw(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  /// Read one newline-terminated response (newline stripped).
  bool recv_response(std::string* line) {
    while (true) {
      const std::size_t nl = carry_.find('\n');
      if (nl != std::string::npos) {
        *line = carry_.substr(0, nl);
        carry_.erase(0, nl + 1);
        return true;
      }
      char buf[16384];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n > 0) {
        carry_.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
  }

  /// One request line in, one parsed response out.
  JsonValue roundtrip(const std::string& request) {
    EXPECT_TRUE(send_raw(request + "\n"));
    std::string line;
    EXPECT_TRUE(recv_response(&line)) << "no response to: " << request;
    const auto doc = json_parse(line);
    EXPECT_TRUE(doc.value.has_value()) << line;
    return doc.value.value_or(JsonValue());
  }

 private:
  int fd_ = -1;
  std::string carry_;
};

/// A live daemon on a unique /tmp unix socket, IO loop on its own thread.
class DaemonFixture {
 public:
  explicit DaemonFixture(ServeConfig cfg) {
    // SIGPIPE is ignored by serve_main in production; tests drive the
    // Daemon class directly, so set the disposition here.
    std::signal(SIGPIPE, SIG_IGN);
    path_ = "/tmp/nvms_test_serve_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++) + ".sock";
    cfg.socket_path = path_;
    daemon_ = std::make_unique<Daemon>(std::move(cfg));
    std::string error;
    started_ = daemon_->start(&error);
    EXPECT_TRUE(started_) << error;
    if (started_) io_ = std::thread([this] { daemon_->run(); });
  }

  ~DaemonFixture() { shutdown(); }

  /// Stop the IO loop and join it (idempotent).
  void shutdown() {
    if (io_.joinable()) {
      daemon_->stop();
      io_.join();
    }
  }

  const std::string& path() const { return path_; }
  Daemon& daemon() { return *daemon_; }

 private:
  static int counter_;
  std::string path_;
  std::unique_ptr<Daemon> daemon_;
  std::thread io_;
  bool started_ = false;
};

int DaemonFixture::counter_ = 0;

/// One-shot CLI stdout for the same query — the byte-identity oracle.
std::string cli_stdout(const std::vector<std::string>& args, int expect_rc) {
  std::vector<std::string> full = {"nvmsim"};
  full.insert(full.end(), args.begin(), args.end());
  std::vector<std::vector<char>> storage;
  std::vector<char*> argv;
  for (const auto& a : full) {
    storage.emplace_back(a.begin(), a.end());
    storage.back().push_back('\0');
    argv.push_back(storage.back().data());
  }
  std::ostringstream out, err;
  EXPECT_EQ(cli_main(static_cast<int>(argv.size()), argv.data(), out, err),
            expect_rc)
      << err.str();
  return out.str();
}

TEST(ServeDaemon, InlineCommandsAnswerWithoutTouchingTheQueue) {
  DaemonFixture d(ServeConfig{});
  RawClient c(d.path());
  ASSERT_TRUE(c.ok());

  const JsonValue pong = c.roundtrip(R"({"id":"p1","cmd":"ping"})");
  EXPECT_EQ(pong.find("id")->as_string(), "p1");
  EXPECT_TRUE(pong.find("ok")->as_bool());
  EXPECT_DOUBLE_EQ(pong.find("exit")->as_number(), 0.0);
  EXPECT_EQ(pong.find("out")->as_string(), "pong");

  const JsonValue stats = c.roundtrip(R"({"cmd":"stats"})");
  ASSERT_TRUE(stats.find("ok")->as_bool());
  const auto inner = json_parse(stats.find("out")->as_string());
  ASSERT_TRUE(inner.value.has_value()) << inner.error;
  EXPECT_DOUBLE_EQ(inner.value->find("workers")->as_number(), 2.0);
  EXPECT_NE(inner.value->find("resolve_cache"), nullptr);

  const JsonValue metrics = c.roundtrip(R"({"cmd":"metrics"})");
  ASSERT_TRUE(metrics.find("ok")->as_bool());
  const std::string text = metrics.find("out")->as_string();
  // serve.* counters and the process-wide shared-cache gauges are both
  // in the exposition (resolve_cache.* is published at process scope —
  // the per-task exclusion does not apply to the daemon).
  EXPECT_NE(text.find("nvms_serve_requests_total"), std::string::npos);
  EXPECT_NE(text.find("nvms_serve_queue_depth"), std::string::npos);
  EXPECT_NE(text.find("resolve_cache"), std::string::npos);
}

TEST(ServeDaemon, ResponsesAreByteIdenticalToTheOneShotCli) {
  DaemonFixture d(ServeConfig{});
  RawClient c(d.path());
  ASSERT_TRUE(c.ok());

  // `list` — static output, the pure framing check.
  const JsonValue list = c.roundtrip(R"({"id":"l","cmd":"list"})");
  ASSERT_TRUE(list.find("ok")->as_bool());
  EXPECT_EQ(list.find("out")->as_string(), cli_stdout({"list"}, 0));

  // A real simulation with JSON output — the full executor path.
  const JsonValue run = c.roundtrip(
      R"({"id":"r","cmd":"run","target":"stream",)"
      R"("args":{"scale":0.25,"threads":12,"mode":"dram-only","json":true}})");
  ASSERT_TRUE(run.find("ok")->as_bool());
  EXPECT_DOUBLE_EQ(run.find("exit")->as_number(), 0.0);
  EXPECT_EQ(run.find("out")->as_string(),
            cli_stdout({"run", "stream", "--scale", "0.25", "--threads",
                        "12", "--mode", "dram-only", "--json"},
                       0));
}

TEST(ServeDaemon, MalformedRequestsGetStructuredErrorsNeverACrash) {
  DaemonFixture d(ServeConfig{});
  RawClient c(d.path());
  ASSERT_TRUE(c.ok());

  // The exact reproducer from the bug report: a malformed --threads CSV
  // reaches the executor and must come back as the CLI's own exit-2
  // diagnostic inside an ok:true envelope (the *request* was valid).
  const JsonValue sweep = c.roundtrip(
      R"({"id":"b","cmd":"sweep","target":"stream",)"
      R"("args":{"threads":"12,abc"}})");
  ASSERT_TRUE(sweep.find("ok")->as_bool());
  EXPECT_DOUBLE_EQ(sweep.find("exit")->as_number(), 2.0);
  EXPECT_NE(sweep.find("err")->as_string().find("not an integer"),
            std::string::npos);

  // Protocol-level garbage -> ok:false envelopes with machine codes.
  const JsonValue bad = c.roundtrip("this is not json");
  EXPECT_FALSE(bad.find("ok")->as_bool());
  EXPECT_EQ(bad.find("code")->as_string(), "malformed");

  const JsonValue rec = c.roundtrip(R"({"cmd":"record","target":"stream"})");
  EXPECT_FALSE(rec.find("ok")->as_bool());
  EXPECT_EQ(rec.find("code")->as_string(), "forbidden");

  const JsonValue probe =
      c.roundtrip(R"({"cmd":"run","target":"../etc/passwd"})");
  EXPECT_FALSE(probe.find("ok")->as_bool());
  EXPECT_EQ(probe.find("code")->as_string(), "forbidden");

  // After the whole fuzz batch the daemon still answers — nothing died.
  EXPECT_EQ(c.roundtrip(R"({"cmd":"ping"})").find("out")->as_string(),
            "pong");
}

TEST(ServeDaemon, OversizedLinesAreRejectedAndTheStreamResyncs) {
  ServeConfig cfg;
  cfg.max_line_bytes = 256;
  DaemonFixture d(cfg);
  RawClient c(d.path());
  ASSERT_TRUE(c.ok());

  // Feed 1 KiB of a single line *without* its newline: the reader's
  // buffer cap trips and answers before the line ever completes.
  ASSERT_TRUE(c.send_raw(std::string(1024, 'x')));
  std::string line;
  ASSERT_TRUE(c.recv_response(&line));
  const auto resp = json_parse(line);
  ASSERT_TRUE(resp.value.has_value());
  EXPECT_FALSE(resp.value->find("ok")->as_bool());
  EXPECT_EQ(resp.value->find("code")->as_string(), "oversized");

  // Finish the bad line; the next line parses normally again.
  ASSERT_TRUE(c.send_raw("yyy\n"));
  EXPECT_EQ(c.roundtrip(R"({"cmd":"ping"})").find("out")->as_string(),
            "pong");
}

TEST(ServeDaemon, ClientBudgetsExhaustPerTenant) {
  ServeConfig cfg;
  cfg.client_budget = 2;
  DaemonFixture d(cfg);
  RawClient c(d.path());
  ASSERT_TRUE(c.ok());

  const std::string run_alice =
      R"({"cmd":"run","target":"stream",)"
      R"("args":{"scale":0.25,"threads":12},"client":"alice"})";
  EXPECT_TRUE(c.roundtrip(run_alice).find("ok")->as_bool());
  EXPECT_TRUE(c.roundtrip(run_alice).find("ok")->as_bool());
  const JsonValue third = c.roundtrip(run_alice);
  EXPECT_FALSE(third.find("ok")->as_bool());
  EXPECT_EQ(third.find("code")->as_string(), "budget");

  // Budgets are per tenant: bob still has his own allowance, and
  // cost-0 commands (list/ping) stay free for alice.
  const std::string run_bob =
      R"({"cmd":"run","target":"stream",)"
      R"("args":{"scale":0.25,"threads":12},"client":"bob"})";
  EXPECT_TRUE(c.roundtrip(run_bob).find("ok")->as_bool());
  EXPECT_TRUE(
      c.roundtrip(R"({"cmd":"list","client":"alice"})").find("ok")->as_bool());
}

TEST(ServeDaemon, SharedResolveCacheWarmsAcrossRequests) {
  DaemonFixture d(ServeConfig{});
  RawClient c(d.path());
  ASSERT_TRUE(c.ok());

  const std::string explain =
      R"({"cmd":"explain","target":"stream",)"
      R"("args":{"scale":0.25,"threads":12,"resolve-cache":"shared",)"
      R"("format":"json"}})";
  const JsonValue cold = c.roundtrip(explain);
  ASSERT_TRUE(cold.find("ok")->as_bool());
  EXPECT_DOUBLE_EQ(cold.find("exit")->as_number(), 0.0);
  const JsonValue warm = c.roundtrip(explain);
  ASSERT_TRUE(warm.find("ok")->as_bool());

  // Byte-identity is cache-independent (the determinism invariant)...
  EXPECT_EQ(cold.find("out")->as_string(), warm.find("out")->as_string());
  // ...and identical to the one-shot CLI run of the same query.
  EXPECT_EQ(cold.find("out")->as_string(),
            cli_stdout({"explain", "stream", "--scale", "0.25", "--threads",
                        "12", "--resolve-cache", "shared", "--format",
                        "json"},
                       0));

  // The second request hit the process-lifetime cache.
  const JsonValue stats = c.roundtrip(R"({"cmd":"stats"})");
  const auto inner = json_parse(stats.find("out")->as_string());
  ASSERT_TRUE(inner.value.has_value());
  const JsonValue* rc = inner.value->find("resolve_cache");
  ASSERT_NE(rc, nullptr);
  EXPECT_GT(rc->find("hits")->as_number(), 0.0);
}

TEST(ServeDaemon, ConcurrentClientsAllGetTheSameBytes) {
  ServeConfig cfg;
  cfg.workers = 4;
  DaemonFixture d(cfg);

  const std::string expected = cli_stdout({"list"}, 0);
  constexpr int kClients = 8;
  constexpr int kRequests = 4;
  std::vector<std::thread> threads;
  std::vector<int> good(kClients, 0);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      RawClient c(d.path());
      if (!c.ok()) return;
      for (int k = 0; k < kRequests; ++k) {
        const JsonValue r = c.roundtrip(R"({"cmd":"list"})");
        const JsonValue* ok = r.find("ok");
        const JsonValue* out = r.find("out");
        if (ok != nullptr && ok->as_bool() && out != nullptr &&
            out->as_string() == expected) {
          ++good[i];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(good[i], kRequests) << "client " << i;
  }
}

TEST(ServeDaemon, ShutdownRequestStopsTheLoopAndUnlinksTheSocket) {
  DaemonFixture d(ServeConfig{});
  {
    RawClient c(d.path());
    ASSERT_TRUE(c.ok());
    const JsonValue bye = c.roundtrip(R"({"id":"s","cmd":"shutdown"})");
    EXPECT_TRUE(bye.find("ok")->as_bool());
    EXPECT_EQ(bye.find("out")->as_string(), "shutting down");
  }
  // run() observes the stop flag within one poll tick and returns.
  d.shutdown();
  // The socket file is gone: new connections are refused.
  RawClient late(d.path());
  EXPECT_FALSE(late.ok());
}

TEST(ServeDaemon, MetricsTextCountsTraffic) {
  DaemonFixture d(ServeConfig{});
  {
    RawClient c(d.path());
    ASSERT_TRUE(c.ok());
    (void)c.roundtrip(R"({"cmd":"ping"})");
    (void)c.roundtrip("garbage");
  }
  const std::string text = d.daemon().metrics_text();
  // Two requests seen, one of them malformed.
  EXPECT_NE(text.find("nvms_serve_requests_total"), std::string::npos);
  EXPECT_NE(text.find("nvms_serve_rejected_malformed_total"),
            std::string::npos);
}

}  // namespace
}  // namespace nvms
