// Tests for the minimal JSON writer and the CLI's --json output.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "cli/driver.hpp"
#include "simcore/error.hpp"
#include "simcore/json.hpp"

namespace nvms {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json(std::uint64_t{1} << 40).dump(), "1099511627776");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("line\nbreak").dump(), "\"line\\nbreak\"");
  EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectsKeepInsertionOrderAndOverwrite) {
  Json j;
  j.set("b", 1).set("a", 2).set("b", 3);
  EXPECT_TRUE(j.is_object());
  EXPECT_EQ(j.dump(), "{\"b\":3,\"a\":2}");
}

TEST(Json, ArraysAndNesting) {
  Json arr;
  arr.push(1).push("two").push(Json().set("three", 3.0));
  EXPECT_TRUE(arr.is_array());
  EXPECT_EQ(arr.dump(), "[1,\"two\",{\"three\":3}]");
}

TEST(Json, PrettyPrinting) {
  Json j;
  j.set("x", 1);
  EXPECT_EQ(j.dump(2), "{\n  \"x\": 1\n}");
}

TEST(Json, DoubleRoundTripPrecision) {
  const double v = 0.1234567890123456789;
  const std::string s = Json(v).dump();
  EXPECT_DOUBLE_EQ(std::stod(s), v);
}

TEST(Json, RejectsNonFinite) {
  EXPECT_THROW(Json(std::nan("")).dump(), ConfigError);
}

TEST(JsonCli, RunEmitsParseableFields) {
  std::ostringstream out;
  std::ostringstream err;
  std::vector<std::string> args = {"nvmsim", "run",       "laghos",
                                   "--json", "--threads", "24"};
  std::vector<char*> argv;
  for (auto& a : args) argv.push_back(a.data());
  const int rc =
      cli_main(static_cast<int>(argv.size()), argv.data(), out, err);
  EXPECT_EQ(rc, 0);
  const std::string s = out.str();
  for (const char* field :
       {"\"app\": \"laghos\"", "\"mode\": \"uncached-nvm\"",
        "\"threads\": 24", "\"runtime_s\":", "\"counters\":",
        "\"imc_reads\":"}) {
    EXPECT_NE(s.find(field), std::string::npos) << field;
  }
}

}  // namespace
}  // namespace nvms
