// DRAM-cache (Memory mode) tests on crafted streams: hit/miss behaviour,
// write-back traffic, eviction, conflict misses, and set sampling.
#include <gtest/gtest.h>

#include "memsim/dram_cache.hpp"
#include "simcore/error.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

CacheParams small_cache(std::uint64_t capacity = 64 * KiB,
                        std::uint64_t line = 4 * KiB) {
  CacheParams p;
  p.line = line;
  p.capacity = capacity;
  p.max_sets = 1u << 16;
  return p;
}

TEST(CacheParams, Validation) {
  CacheParams p = small_cache();
  p.line = 100;  // not a power of two
  EXPECT_THROW(DramCache{p}, ConfigError);
  p = small_cache();
  p.capacity = p.line / 2;
  EXPECT_THROW(DramCache{p}, ConfigError);
}

TEST(DramCache, ColdSequentialReadMissesThenHits) {
  DramCache c(small_cache());
  // Buffer of 32 KiB = 8 lines, cache holds 16 lines -> fits.
  const StreamDesc rd = seq_read(0, 32 * KiB);
  const auto cold = c.access(rd, 0, 32 * KiB);
  EXPECT_EQ(cold.misses, 8u);
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.nvm_read, 32 * KiB);   // all fetched
  EXPECT_EQ(cold.dram_write, 32 * KiB); // all filled
  EXPECT_EQ(cold.nvm_write, 0u);        // nothing dirty yet

  const auto warm = c.access(rd, 0, 32 * KiB);
  EXPECT_EQ(warm.hits, 8u);
  EXPECT_EQ(warm.misses, 0u);
  EXPECT_EQ(warm.nvm_read, 0u);
  EXPECT_EQ(warm.dram_read, 32 * KiB);
}

TEST(DramCache, WriteAllocateAndWriteback) {
  DramCache c(small_cache());
  const StreamDesc wr = seq_write(0, 32 * KiB);
  const auto first = c.access(wr, 0, 32 * KiB);
  // write misses allocate: NVM read + fill + the store itself
  EXPECT_EQ(first.nvm_read, 32 * KiB);
  EXPECT_EQ(first.dram_write, 2 * 32 * KiB);
  EXPECT_EQ(first.nvm_write, 0u);

  // A conflicting buffer mapped over the same sets evicts dirty lines.
  // The cache has 16 sets; a second buffer based at capacity aliases
  // set-for-set with the first.
  const auto evict = c.access(seq_read(1, 32 * KiB), 64 * KiB, 32 * KiB);
  EXPECT_EQ(evict.misses, 8u);
  EXPECT_EQ(evict.nvm_write, 32 * KiB);  // dirty victims written back
}

TEST(DramCache, CleanEvictionHasNoWriteback) {
  DramCache c(small_cache());
  (void)c.access(seq_read(0, 32 * KiB), 0, 32 * KiB);
  const auto evict = c.access(seq_read(1, 32 * KiB), 64 * KiB, 32 * KiB);
  EXPECT_EQ(evict.nvm_write, 0u);
}

TEST(DramCache, StreamingFootprintBeyondCapacityAlwaysMisses) {
  DramCache c(small_cache(64 * KiB));
  // 1 MiB buffer walked twice: 16x the cache, every touch misses.
  const StreamDesc rd = seq_read(0, 2 * MiB);
  const auto out = c.access(rd, 0, 1 * MiB);
  EXPECT_EQ(out.hits, 0u);
  EXPECT_EQ(out.misses, 2 * MiB / (4 * KiB));
}

TEST(DramCache, ReuseWithinCapacityHitsAfterWarmup) {
  DramCache c(small_cache(64 * KiB));
  // 32 KiB buffer walked 8 times: first pass misses, the rest hit.
  const auto out = c.access(seq_read(0, 8 * 32 * KiB), 0, 32 * KiB);
  EXPECT_EQ(out.misses, 8u);
  EXPECT_EQ(out.hits, 7u * 8u);
}

TEST(DramCache, OccupancyTracksValidLines) {
  DramCache c(small_cache(64 * KiB));
  EXPECT_DOUBLE_EQ(c.occupancy(), 0.0);
  (void)c.access(seq_read(0, 32 * KiB), 0, 32 * KiB);
  EXPECT_NEAR(c.occupancy(), 0.5, 1e-12);
  c.reset();
  EXPECT_DOUBLE_EQ(c.occupancy(), 0.0);
}

TEST(DramCache, RandomStreamMixesHitsAndMisses) {
  DramCache c(small_cache(256 * KiB));
  // Random touches over a buffer 4x the cache: steady-state hit rate must
  // be well below 1 and above 0.
  const StreamDesc rr = rand_read(0, 16 * MiB);
  (void)c.access(rr, 0, 1 * MiB);  // warm
  const auto out = c.access(rr, 0, 1 * MiB);
  // Direct-mapped steady state over a 4x footprint is ~25% raw hits; the
  // occupancy-driven conflict model converts most of those at full
  // occupancy, leaving a small but nonzero residue.
  const double hit_rate = static_cast<double>(out.hits) /
                          static_cast<double>(out.hits + out.misses);
  EXPECT_GT(hit_rate, 0.005);
  EXPECT_LT(hit_rate, 0.6);
}

TEST(DramCache, RandomWriteGeneratesWritebackTraffic) {
  DramCache c(small_cache(256 * KiB));
  const StreamDesc rw = rand_write(0, 16 * MiB);
  (void)c.access(rw, 0, 1 * MiB);
  const auto out = c.access(rw, 0, 1 * MiB);
  EXPECT_GT(out.nvm_write, 0u);
}

TEST(DramCache, SetSamplingKicksInForHugeCaches) {
  CacheParams p;
  p.line = 4 * KiB;
  p.capacity = 8 * GiB;  // 2M sets
  p.max_sets = 1u << 14;
  DramCache c(p);
  EXPECT_GT(c.sample_mod(), 1u);
  EXPECT_LE(c.sets() / c.sample_mod(), (1u << 14));
  // Sampled simulation still produces sane scaled counts.
  const auto out = c.access(seq_read(0, 512 * MiB), 0, 256 * MiB);
  const auto touches = 512 * MiB / (4 * KiB);
  EXPECT_NEAR(static_cast<double>(out.hits + out.misses),
              static_cast<double>(touches), 0.1 * static_cast<double>(touches));
}

TEST(DramCache, SamplingDividesSets) {
  // The sampling stride must divide the set count (the snap/clamp math in
  // access() depends on it); the ctor stops doubling rather than break it,
  // even if that leaves more simulated sets than max_sets asked for.
  CacheParams p;
  p.line = 64;
  p.capacity = 24 * 64;  // 24 sets: 2^3 * 3
  p.max_sets = 2;
  DramCache c(p);
  EXPECT_EQ(c.sets(), 24u);
  EXPECT_EQ(c.sets() % c.sample_mod(), 0u);
  EXPECT_EQ(c.sample_mod(), 8u);  // 16 would not divide 24
}

TEST(DramCache, StridedWalkOffPhaseWithSamplingStillSimulates) {
  // Regression: a strided walk whose stride shares a factor with the
  // sampling stride, launched from an off-phase base set, skipped every
  // sampled set — the walk simulated zero lines and the stream's traffic
  // vanished from the model entirely (phases over such buffers became
  // free).  The walk must fall back to snapped lines instead.
  CacheParams p;
  p.line = 64;
  p.capacity = 64 * KiB;  // 1024 sets
  p.max_sets = 512;
  DramCache c(p);
  ASSERT_EQ(c.sample_mod(), 2u);
  // Buffer of 512 lines based at an odd line; a half pass (256 distinct
  // touches) walks stride 2, so every touched line stays odd: off-phase
  // with the even sampled sets.
  const std::uint64_t base = 64;  // base_line = 1
  const StreamDesc rd = seq_read(0, 16 * KiB);  // 256 line touches
  const auto out = c.access(rd, base, 32 * KiB);
  EXPECT_GT(out.hits + out.misses, 0u);
  EXPECT_GT(out.nvm_read, 0u);  // cold misses fetch from the media
}

TEST(DramCache, RandomSnapStaysInsideBuffer) {
  // Regression: the random path snapped lines *down* to a sampled set,
  // which could cross the buffer's base line — a read over one buffer
  // then touched (and evicted) another buffer's cached lines.
  CacheParams p;
  p.line = 64;
  p.capacity = 64 * 64;  // 64 sets
  p.max_sets = 8;
  DramCache c(p);
  ASSERT_EQ(c.sample_mod(), 8u);
  // Buffer A: lines [0, 30), written — sampled sets 0/8/16/24 are dirty.
  (void)c.access(seq_write(0, 30 * 64), 0, 30 * 64);
  // Buffer B: lines [94, 106), i.e. sets 30..41 one wrap later; its
  // sampled in-buffer lines are 96 and 104 (sets 32 and 40), both cold.
  // The unclamped snap sent lines 94/95 down to line 88 = set 24,
  // colliding with A's dirty line there: a *read* of B emitted phantom
  // write-back traffic for A's data.
  const auto out = c.access(rand_read(1, 64 * KiB), 94 * 64, 12 * 64);
  EXPECT_GT(out.misses, 0u);
  EXPECT_EQ(out.nvm_write, 0u);  // no write-backs of A's lines
}

TEST(DramCache, ZeroByteStreamIsNoop) {
  DramCache c(small_cache());
  StreamDesc s = seq_read(0, 0);
  const auto out = c.access(s, 0, 32 * KiB);
  EXPECT_EQ(out.hits + out.misses, 0u);
}

TEST(DramCache, TrafficConservation) {
  // NVM read traffic equals miss count * line; DRAM fill equals it too.
  DramCache c(small_cache(128 * KiB));
  const auto out = c.access(seq_read(0, 1 * MiB), 0, 512 * KiB);
  EXPECT_EQ(out.nvm_read, out.misses * 4 * KiB);
  EXPECT_GE(out.dram_write, out.misses * 4 * KiB);
}

}  // namespace
}  // namespace nvms
