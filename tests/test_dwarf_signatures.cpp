// Per-application traffic-signature tests: each dwarf's memory behaviour
// must carry the fingerprint Table III and the trace figures attribute to
// it — independent of absolute calibration.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "harness/registry.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

AppResult uncached(const std::string& app, int threads = 36) {
  AppConfig cfg;
  cfg.threads = threads;
  return run_app(app, Mode::kUncachedNvm, cfg);
}

double write_ratio(const AppResult& r) {
  const double rd = r.traces.avg_read_bw();
  const double wr = r.traces.avg_write_bw();
  return wr / (rd + wr);
}

std::set<std::string> phase_names(const AppResult& r) {
  std::set<std::string> names;
  for (const auto& p : r.traces.phases) names.insert(p.name);
  return names;
}

TEST(Signature, XsbenchIsPureRandomRead) {
  const auto r = uncached("xsbench");
  EXPECT_LT(write_ratio(r), 0.001);
  // single phase type, repeated per batch
  const auto names = phase_names(r);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(*names.begin(), "lookup");
  EXPECT_GT(r.samples.size(), 10u);
}

TEST(Signature, HaccIsComputeBound) {
  const auto r = uncached("hacc");
  // total traffic is tiny relative to the runtime: tens of MB/s
  EXPECT_LT(r.traces.avg_read_bw() + r.traces.avg_write_bw(), mbps(200));
  // but the write share is substantial (vel/acc updates)
  EXPECT_GT(write_ratio(r), 0.2);
}

TEST(Signature, FtHasTheHighestWriteRatio) {
  std::map<std::string, double> ratios;
  for (const auto& app : app_names()) ratios[app] = write_ratio(uncached(app));
  for (const auto& [app, ratio] : ratios) {
    if (app == "ft") continue;
    EXPECT_GE(ratios["ft"], ratio) << app;
  }
  EXPECT_GT(ratios["ft"], 0.3);
}

TEST(Signature, FtPhaseStructure) {
  const auto r = uncached("ft");
  const auto names = phase_names(r);
  for (const char* expected :
       {"evolve", "fftx", "ffty", "fftz", "sync", "checksum"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(Signature, SuperLuTwoStages) {
  const auto r = uncached("superlu");
  const auto names = phase_names(r);
  EXPECT_TRUE(names.count("factor:panel"));
  EXPECT_TRUE(names.count("solve:sweep"));
  // stage 1 write-heavy: its share dominates on uncached NVM
  EXPECT_GT(r.traces.phase_time_fraction("factor"), 0.5);
}

TEST(Signature, ScalapackStages) {
  const auto r = uncached("scalapack");
  const auto names = phase_names(r);
  EXPECT_TRUE(names.count("bcast"));
  EXPECT_TRUE(names.count("update"));
  // panels alternate bcast/update
  EXPECT_EQ(r.traces.phases.size() % 2, 0u);
}

TEST(Signature, HypreIsReadDominant) {
  const auto r = uncached("hypre");
  EXPECT_LT(write_ratio(r), 0.10);
  const auto names = phase_names(r);
  EXPECT_TRUE(names.count("smooth-down"));
  EXPECT_TRUE(names.count("prolong"));
}

TEST(Signature, BoxlibRegridsPeriodically) {
  const auto r = uncached("boxlib");
  int regrids = 0;
  for (const auto& p : r.traces.phases) regrids += (p.name == "regrid");
  // 16 steps, regrid every 4
  EXPECT_EQ(regrids, 4);
}

TEST(Signature, LaghosAssemblyThenTimeloop) {
  const auto r = uncached("laghos");
  // all assembly phases strictly precede the time loop
  double last_assembly_end = 0.0;
  double first_timeloop_start = 1e300;
  for (const auto& p : r.traces.phases) {
    if (p.name == "assembly") last_assembly_end = std::max(last_assembly_end, p.t1);
    if (p.name.rfind("timeloop", 0) == 0)
      first_timeloop_start = std::min(first_timeloop_start, p.t0);
  }
  EXPECT_LE(last_assembly_end, first_timeloop_start + 1e-12);
}

TEST(Signature, MemoryBandwidthOrderingMatchesTableIII) {
  // On uncached NVM the paper's bandwidth ordering has hacc tiny, laghos
  // and ft low, and the scaled tier high.
  std::map<std::string, double> bw;
  for (const auto& app : app_names()) {
    const auto r = uncached(app);
    bw[app] = r.traces.avg_read_bw() + r.traces.avg_write_bw();
  }
  EXPECT_LT(bw["hacc"], bw["laghos"]);
  EXPECT_LT(bw["laghos"], bw["superlu"]);
  EXPECT_LT(bw["ft"], bw["superlu"]);
  EXPECT_LT(bw["superlu"], bw["scalapack"]);
}

TEST(Signature, IterationOverridesScaleWork) {
  // scalapack's panel count follows the matrix dimension and xsbench's
  // total lookups are fixed (batches only partition them), so the
  // override applies to the time-stepped applications.
  for (const std::string app :
       {"hacc", "laghos", "hypre", "superlu", "boxlib", "ft"}) {
    AppConfig one;
    one.threads = 24;
    one.iterations = 1;
    AppConfig four = one;
    four.iterations = 4;
    const auto r1 = run_app(app, Mode::kDramOnly, one);
    const auto r4 = run_app(app, Mode::kDramOnly, four);
    EXPECT_GT(r4.runtime, r1.runtime) << app;
    EXPECT_GE(r4.samples.size(), r1.samples.size()) << app;
  }
}

}  // namespace
}  // namespace nvms
