// Kernel-parity suite for the SoA epoch kernels (PR: SoA epoch kernel).
//
// The SoA resolve_lanes fixed point and the strength-reduced DramCache
// walk are layout/arithmetic reworks of the scalar reference kernels —
// not model changes — so every observable they produce must match the
// reference *bitwise*: same outcomes, same RNG trajectory, same resolved
// times, for every dwarf, socket mix, sampling geometry and resolve-cache
// mode.  The reference kernels stay in the binary behind
// set_reference_kernels(); these tests run both sides in one process and
// compare exactly (EXPECT_EQ on doubles, not near-comparisons).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "appfw/app.hpp"
#include "harness/kernel_bench.hpp"
#include "harness/registry.hpp"
#include "mem/space.hpp"
#include "memsim/dram_cache.hpp"
#include "memsim/memory_system.hpp"
#include "memsim/resolve.hpp"
#include "memsim/resolve_cache.hpp"
#include "simcore/rng.hpp"
#include "simcore/units.hpp"
#include "trace/pattern.hpp"

namespace nvms {
namespace {

/// Flips to the scalar reference kernels for one scope; always restores
/// the SoA kernels, even when an assertion fails out of the test body.
class ReferenceKernelsGuard {
 public:
  ReferenceKernelsGuard() { set_reference_kernels(true); }
  ~ReferenceKernelsGuard() { set_reference_kernels(false); }
};

TEST(FastModKernel, MatchesHardwareModuloExactly) {
  // The walk kernel's reciprocal modulo must be exact for every operand,
  // not just typical ones: divisor 1 (the q = n-1 special case), powers
  // of two, adjacent odd/even divisors, and divisors near 2^64 where the
  // magic constant degenerates to 1.
  const std::uint64_t divisors[] = {
      1,        2,          3,          5,          7,
      1023,     1024,       1025,       46080,      123456789,
      1u << 31, 0xFFFFFFFFull, 0x100000001ull, ~0ull - 1, ~0ull};
  Rng rng(0xF00D);
  for (const std::uint64_t d : divisors) {
    FastMod fm;
    fm.init(d);
    const std::uint64_t probes[] = {0,      1,      d - 1, d,
                                    d + 1,  2 * d,  ~0ull, ~0ull - 1,
                                    d * 3 + 1};
    for (const std::uint64_t n : probes) {
      EXPECT_EQ(fm.mod(n), n % d) << "n=" << n << " d=" << d;
    }
    for (int i = 0; i < 10000; ++i) {
      const std::uint64_t n = rng();
      ASSERT_EQ(fm.mod(n), n % d) << "n=" << n << " d=" << d;
    }
  }
}

/// One mixed access sequence covering both walk families and their edge
/// cases: sequential/random, read/write, reuse blocking, sub-line sizes,
/// unaligned bases, and buffers smaller than one sampling stride.
std::vector<CacheAccessRequest> walk_program() {
  std::vector<CacheAccessRequest> prog;
  const auto add = [&](StreamDesc s, std::uint64_t base, std::uint64_t size) {
    prog.push_back({s, base, size});
  };
  const BufferId b{};
  add(seq_read(b, 64 * MiB), 0, 48 * MiB);
  add(rand_read(b, 32 * MiB), 0, 48 * MiB);
  add(seq_write(b, 16 * MiB), 48 * MiB, 32 * MiB);
  add(rand_write(b, 8 * MiB), 48 * MiB, 32 * MiB);
  // High-reuse blocked stream: exercises the per-block entry modulo and
  // the skip-walk's wrap handling across many reuse passes.
  StreamDesc blocked = seq_read(b, 96 * MiB);
  blocked.reuse = 6;
  blocked.reuse_block = 2 * MiB;
  add(blocked, 80 * MiB, 24 * MiB);
  // Unaligned base and a buffer smaller than the sampling stride: the
  // degenerate snap clause must fire identically on both kernels.
  add(seq_read(b, 2 * MiB), 104 * MiB + 4096, 8 * KiB);
  add(rand_read(b, 1 * MiB), 104 * MiB + 12288, 4 * KiB);
  add(seq_write(b, 512 * KiB), 0, 4096);
  // Re-walk warm ranges so hit/evict paths run, not just cold fills.
  add(seq_write(b, 64 * MiB), 0, 48 * MiB);
  add(rand_read(b, 32 * MiB), 0, 48 * MiB);
  return prog;
}

void expect_outcomes_identical(const CacheOutcome& ref,
                               const CacheOutcome& soa, std::size_t step) {
  EXPECT_EQ(ref.dram_read, soa.dram_read) << "step " << step;
  EXPECT_EQ(ref.dram_write, soa.dram_write) << "step " << step;
  EXPECT_EQ(ref.nvm_read, soa.nvm_read) << "step " << step;
  EXPECT_EQ(ref.nvm_read_scattered, soa.nvm_read_scattered) << "step " << step;
  EXPECT_EQ(ref.nvm_write, soa.nvm_write) << "step " << step;
  EXPECT_EQ(ref.hits, soa.hits) << "step " << step;
  EXPECT_EQ(ref.misses, soa.misses) << "step " << step;
}

TEST(WalkKernelParity, SampledAndUnsampledGeometries) {
  // max_sets 1<<12 forces set sampling (sample_mod > 1, the skip-walk
  // path); 1<<20 keeps every set simulated (sample_mod == 1).  Both
  // geometries must agree with the scalar reference access by access,
  // including the final occupancy (i.e. the tag-array trajectory).
  for (const std::uint64_t max_sets : {1ull << 12, 1ull << 20}) {
    CacheParams cp;
    cp.line = 4 * KiB;
    cp.capacity = 96 * MiB;
    cp.max_sets = max_sets;
    const auto prog = walk_program();

    DramCache ref_cache(cp);
    std::vector<CacheOutcome> ref_out(prog.size());
    {
      ReferenceKernelsGuard guard;
      for (std::size_t i = 0; i < prog.size(); ++i) {
        ref_out[i] = ref_cache.access(prog[i].stream, prog[i].base,
                                      prog[i].size);
      }
    }

    DramCache soa_cache(cp);
    std::vector<CacheOutcome> soa_out(prog.size());
    soa_cache.walk_batch(prog.data(), prog.size(), soa_out.data());

    for (std::size_t i = 0; i < prog.size(); ++i) {
      expect_outcomes_identical(ref_out[i], soa_out[i], i);
    }
    EXPECT_EQ(ref_cache.occupancy(), soa_cache.occupancy())
        << "max_sets=" << max_sets;
  }
}

TEST(ResolveKernelParity, BothSocketsAllPatterns) {
  // The SoA fixed point must reproduce the scalar resolver exactly on
  // demand mixes spanning both socket device models, every pattern/dir
  // combination, UPI coupling, and thread counts on both sides of the
  // concurrency knee.
  const auto dram = ddr4_socket_params(96 * GiB);
  const auto nvm = optane_socket_params(768 * GiB);
  const CpuParams cpu;
  for (const int threads : {1, 12, 36, 72}) {
    for (const double gb : {0.5, 8.0, 54.0}) {
      Phase p;
      p.name = "parity";
      p.threads = threads;
      p.flops = 5e8 * threads;
      std::vector<LaneDemand> lanes(2);
      lanes[0].dev = &dram;
      lanes[0].label = "dram0";
      lanes[0].dem.add(Pattern::kSequential, Dir::kRead, gb * GiB);
      lanes[0].dem.add(Pattern::kRandom, Dir::kWrite, gb * GiB / 4, 64);
      lanes[1].dev = &nvm;
      lanes[1].label = "nvm0";
      lanes[1].dem.add(Pattern::kStrided, Dir::kRead, gb * GiB / 2);
      lanes[1].dem.add(Pattern::kSequential, Dir::kWrite, gb * GiB / 3);
      lanes[1].dem.add(Pattern::kRandom, Dir::kRead, gb * GiB / 8, 256);

      MultiResolution ref;
      {
        ReferenceKernelsGuard guard;
        ref = resolve_lanes(p, lanes, cpu, 2.0 * GiB, 60.0 * GiB, nullptr,
                            0.0);
      }
      const MultiResolution soa =
          resolve_lanes(p, lanes, cpu, 2.0 * GiB, 60.0 * GiB, nullptr, 0.0);

      EXPECT_EQ(ref.time, soa.time) << threads << " thr, " << gb << " GiB";
      EXPECT_EQ(ref.compute_time, soa.compute_time);
      ASSERT_EQ(ref.lanes.size(), soa.lanes.size());
      for (std::size_t i = 0; i < ref.lanes.size(); ++i) {
        EXPECT_EQ(ref.lanes[i].read_time, soa.lanes[i].read_time);
        EXPECT_EQ(ref.lanes[i].write_time, soa.lanes[i].write_time);
        EXPECT_EQ(ref.lanes[i].read_bw, soa.lanes[i].read_bw);
        EXPECT_EQ(ref.lanes[i].write_bw, soa.lanes[i].write_bw);
        EXPECT_EQ(ref.lanes[i].wpq_util, soa.lanes[i].wpq_util);
        EXPECT_EQ(ref.lanes[i].throttle, soa.lanes[i].throttle);
      }
    }
  }
}

TEST(WholeAppParity, AllDwarfsAllModes) {
  // End-to-end: every registered app in every memory mode must simulate
  // to bit-identical results under either kernel family.  This is the
  // whole-pipeline closure of the per-kernel parity tests above.
  init_registry();
  AppConfig cfg;
  cfg.threads = 36;
  for (const auto& name : app_names()) {
    for (const Mode mode : kAllModes) {
      AppResult ref;
      {
        ReferenceKernelsGuard guard;
        ref = run_app(name, mode, cfg);
      }
      const AppResult soa = run_app(name, mode, cfg);
      EXPECT_EQ(ref.fom, soa.fom) << name;
      EXPECT_EQ(ref.runtime, soa.runtime) << name;
    }
  }
}

TEST(ReplayFoldParity, AllResolveCacheModes) {
  // The corpus replay used by the perf snapshots, across every
  // resolve-cache mode: the fold of all resolved phase times must be
  // identical between kernel families (this equality is also what
  // anchors BENCH_epoch.json's speedup claim to identical work).
  const auto corpora = fig2_corpora(/*quick=*/true);
  for (const ResolveCacheMode mode :
       {ResolveCacheMode::kOff, ResolveCacheMode::kPerRun,
        ResolveCacheMode::kShared}) {
    ReplayResult ref;
    {
      ReferenceKernelsGuard guard;
      ref = replay_corpora(corpora, 1, mode);
    }
    const ReplayResult soa = replay_corpora(corpora, 1, mode);
    EXPECT_EQ(ref.time_fold, soa.time_fold)
        << "mode " << static_cast<int>(mode);
    EXPECT_EQ(ref.epochs, soa.epochs);
  }
}

TEST(StreamMemoBurst, LongMissBurstAfterLongHitRunStaysBitIdentical) {
  // Regression for the batched catch-up: a long memoized prefix (every
  // walk skipped) followed by a long burst of never-memoized accesses.
  // The first miss triggers one catch-up over the whole pending backlog,
  // and the subsequent misses walk live; the trajectory must match a
  // memo-less system exactly throughout.
  const SystemConfig cfg = SystemConfig::testbed(Mode::kCachedNvm);
  const auto prefix = [](MemorySystem& sys, BufferId a, BufferId b) {
    for (int i = 0; i < 40; ++i) {
      (void)sys.submit(PhaseBuilder("prefix")
                           .threads(24)
                           .stream(seq_read(a, 24 * MiB))
                           .stream(rand_read(b, 8 * MiB))
                           .stream(seq_write(b, 4 * MiB))
                           .build());
    }
  };
  const auto burst = [](MemorySystem& sys, BufferId a, BufferId b, int salt) {
    for (int i = 0; i < 30; ++i) {
      // Sizes keyed off the loop index: no two accesses repeat, so each
      // is a memo miss walking real (caught-up) state.
      (void)sys.submit(PhaseBuilder("burst")
                           .threads(24)
                           .stream(rand_read(a, (salt + i + 1) * MiB))
                           .stream(seq_write(b, (i % 7 + 1) * MiB))
                           .build());
    }
  };
  const auto run = [&](MemorySystem& sys) {
    const auto a = sys.register_buffer("a", 32 * MiB);
    const auto b = sys.register_buffer("b", 16 * MiB);
    prefix(sys, a, b);
    burst(sys, a, b, 3);
  };

  ResolveCache cache(1);
  MemorySystem seed(cfg);
  seed.set_resolve_cache(&cache);
  {  // Seed only the prefix, so the burst is a pure miss run.
    const auto a = seed.register_buffer("a", 32 * MiB);
    const auto b = seed.register_buffer("b", 16 * MiB);
    prefix(seed, a, b);
  }

  MemorySystem plain(cfg);
  run(plain);
  MemorySystem memoized(cfg);
  memoized.set_resolve_cache(&cache);
  run(memoized);

  EXPECT_GT(cache.stream_stats().hits, 0u);
  EXPECT_EQ(memoized.now(), plain.now());
  EXPECT_EQ(memoized.counters().cycles_active, plain.counters().cycles_active);
  EXPECT_EQ(memoized.counters().imc_reads, plain.counters().imc_reads);
  EXPECT_EQ(memoized.counters().imc_writes, plain.counters().imc_writes);
}

}  // namespace
}  // namespace nvms
