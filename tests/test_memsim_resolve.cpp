// Phase-resolution tests: roofline behaviour, write throttling fixed point,
// concurrency effects, and the SuperLU/Laghos calibration scenarios from
// Sec. IV-C of the paper.
#include <gtest/gtest.h>

#include "memsim/resolve.hpp"
#include "simcore/error.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

struct Fixture {
  DeviceParams dram = ddr4_socket_params(96 * GiB);
  DeviceParams nvm = optane_socket_params(768 * GiB);
  CpuParams cpu;
};

Phase mk_phase(int threads, double flops) {
  Phase p;
  p.name = "test";
  p.threads = threads;
  p.flops = flops;
  return p;
}

TEST(Resolve, PureComputePhase) {
  Fixture f;
  Phase p = mk_phase(24, 1e9);
  const auto res = resolve_phase(p, {}, {}, f.dram, f.nvm, f.cpu);
  EXPECT_DOUBLE_EQ(res.time, res.compute_time);
  EXPECT_GT(res.time, 0.0);
  EXPECT_DOUBLE_EQ(res.dram.read_bw, 0.0);
}

TEST(Resolve, EmptyPhaseTakesNoTime) {
  Fixture f;
  Phase p = mk_phase(1, 0.0);
  const auto res = resolve_phase(p, {}, {}, f.dram, f.nvm, f.cpu);
  EXPECT_DOUBLE_EQ(res.time, 0.0);
}

TEST(Resolve, SequentialReadHitsDeviceBandwidth) {
  Fixture f;
  Phase p = mk_phase(24, 0.0);
  DeviceDemand dram;
  dram.add(Pattern::kSequential, Dir::kRead, 10 * GiB);
  const auto res = resolve_phase(p, dram, {}, f.dram, f.nvm, f.cpu);
  const double cap = f.dram.read_capacity(Pattern::kSequential, 24);
  EXPECT_NEAR(res.dram.read_bw, cap, 0.02 * cap);
}

TEST(Resolve, NvmReadsSlowerThanDram) {
  Fixture f;
  Phase p = mk_phase(24, 0.0);
  DeviceDemand dem;
  dem.add(Pattern::kSequential, Dir::kRead, 10 * GiB);
  const auto on_dram = resolve_phase(p, dem, {}, f.dram, f.nvm, f.cpu);
  const auto on_nvm = resolve_phase(p, {}, dem, f.dram, f.nvm, f.cpu);
  EXPECT_GT(on_nvm.time, 2.0 * on_dram.time);
}

TEST(Resolve, RooflineOverlap) {
  Fixture f;
  Phase p = mk_phase(24, 0.0);
  DeviceDemand dem;
  dem.add(Pattern::kSequential, Dir::kRead, 10 * GiB);
  const auto mem_only = resolve_phase(p, dem, {}, f.dram, f.nvm, f.cpu);
  // Add compute that takes less time than memory: fully hidden.
  p.flops = 1e9;
  const auto both = resolve_phase(p, dem, {}, f.dram, f.nvm, f.cpu);
  EXPECT_NEAR(both.time, mem_only.time, 1e-9);
  // No overlap: times add.
  p.overlap = 0.0;
  const auto serial = resolve_phase(p, dem, {}, f.dram, f.nvm, f.cpu);
  EXPECT_NEAR(serial.time, mem_only.time + both.compute_time, 1e-9);
}

TEST(Resolve, WriteThrottlingSuperLuStageOne) {
  // Paper, Sec. IV-C: SuperLU stage 1 demands ~54 GB/s reads and
  // ~33 GB/s writes on DRAM.  On uncached NVM at high concurrency, writes
  // collapse to ~2.3 GB/s and throttled reads to ~4 GB/s.
  Fixture f;
  Phase p = mk_phase(36, 0.0);
  DeviceDemand dem;
  dem.add(Pattern::kSequential, Dir::kRead, 54 * GiB);
  dem.add(Pattern::kSequential, Dir::kWrite, 33 * GiB);
  const auto res = resolve_phase(p, {}, dem, f.dram, f.nvm, f.cpu);
  EXPECT_NEAR(res.nvm.write_bw / GB, 2.3, 0.6);
  EXPECT_NEAR(res.nvm.read_bw / GB, 4.0, 1.5);
  EXPECT_GT(res.nvm.wpq_util, 0.95);
  EXPECT_LT(res.nvm.throttle, 0.2);
}

TEST(Resolve, LowWriteRateAvoidsThrottling) {
  // Laghos-like: ~3 GB/s reads, ~1.3 GB/s writes -> below the ~2 GB/s
  // threshold, reads are essentially unthrottled.
  Fixture f;
  // Compute sized so the phase lasts ~1 s, putting the write demand rate
  // at ~1.3 GB/s, below the throttling threshold.
  Phase p = mk_phase(36, 5.5e11);
  DeviceDemand dem;
  dem.add(Pattern::kSequential, Dir::kRead, 3 * GiB);
  dem.add(Pattern::kSequential, Dir::kWrite, 1300 * MiB);
  const auto res = resolve_phase(p, {}, dem, f.dram, f.nvm, f.cpu);
  EXPECT_GT(res.nvm.throttle, 0.9);
}

TEST(Resolve, ThrottleMonotoneInWriteDemand) {
  Fixture f;
  Phase p = mk_phase(36, 0.0);
  double prev_throttle = 1.1;
  for (double wgib : {0.5, 2.0, 8.0, 32.0}) {
    DeviceDemand dem;
    dem.add(Pattern::kSequential, Dir::kRead, 20 * GiB);
    dem.add(Pattern::kSequential, Dir::kWrite,
            static_cast<std::uint64_t>(wgib * static_cast<double>(GiB)));
    const auto res = resolve_phase(p, {}, dem, f.dram, f.nvm, f.cpu);
    EXPECT_LE(res.nvm.throttle, prev_throttle + 1e-9);
    prev_throttle = res.nvm.throttle;
  }
  EXPECT_LT(prev_throttle, 0.2);
}

TEST(Resolve, NvmWriteBandwidthDeclinesWithConcurrency) {
  // The diverging effect (Sec. IV-D): more threads help reads but hurt
  // NVM writes.
  Fixture f;
  DeviceDemand dem;
  dem.add(Pattern::kSequential, Dir::kWrite, 4 * GiB);
  Phase lo = mk_phase(4, 0.0);
  Phase hi = mk_phase(48, 0.0);
  const auto r_lo = resolve_phase(lo, {}, dem, f.dram, f.nvm, f.cpu);
  const auto r_hi = resolve_phase(hi, {}, dem, f.dram, f.nvm, f.cpu);
  EXPECT_GT(r_lo.nvm.write_bw, r_hi.nvm.write_bw);

  DeviceDemand rdem;
  rdem.add(Pattern::kSequential, Dir::kRead, 4 * GiB);
  const auto rr_lo = resolve_phase(lo, {}, rdem, f.dram, f.nvm, f.cpu);
  const auto rr_hi = resolve_phase(hi, {}, rdem, f.dram, f.nvm, f.cpu);
  EXPECT_GT(rr_hi.nvm.read_bw, rr_lo.nvm.read_bw);
}

TEST(Resolve, RandomReadsLatencyLimited) {
  Fixture f;
  Phase p = mk_phase(8, 0.0);
  p.mlp = 1.0;
  DeviceDemand dem;
  dem.add(Pattern::kRandom, Dir::kRead, 1 * GiB);
  const auto res = resolve_phase(p, {}, dem, f.dram, f.nvm, f.cpu);
  const double little = f.nvm.latency_limited_read_bw(8, 1.0);
  EXPECT_NEAR(res.nvm.read_bw, little, 0.05 * little);
}

TEST(Resolve, RejectsInvalidPhases) {
  Fixture f;
  Phase p = mk_phase(0, 0.0);
  EXPECT_THROW(resolve_phase(p, {}, {}, f.dram, f.nvm, f.cpu), ConfigError);
  p = mk_phase(4, 0.0);
  p.mlp = 0.0;
  EXPECT_THROW(resolve_phase(p, {}, {}, f.dram, f.nvm, f.cpu), ConfigError);
  p = mk_phase(4, 0.0);
  p.overlap = 2.0;
  EXPECT_THROW(resolve_phase(p, {}, {}, f.dram, f.nvm, f.cpu), ConfigError);
}

TEST(Resolve, MixedDeviceDemandTakesSlowerDevice) {
  Fixture f;
  Phase p = mk_phase(24, 0.0);
  DeviceDemand dram;
  dram.add(Pattern::kSequential, Dir::kRead, 1 * GiB);
  DeviceDemand nvm;
  nvm.add(Pattern::kSequential, Dir::kRead, 1 * GiB);
  const auto res = resolve_phase(p, dram, nvm, f.dram, f.nvm, f.cpu);
  const double nvm_time =
      static_cast<double>(GiB) / f.nvm.read_capacity(Pattern::kSequential, 24);
  EXPECT_NEAR(res.time, nvm_time, 0.05 * nvm_time);
}

}  // namespace
}  // namespace nvms
