// Tests for the option parser and the nvmsim command-line driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "cli/driver.hpp"
#include "cli/options.hpp"
#include "cli/parse.hpp"
#include "simcore/error.hpp"
#include "simcore/units.hpp"

namespace nvms {
namespace {

/// argv helper: keeps the strings alive for the call.
struct Argv {
  explicit Argv(std::vector<std::string> args) : strings(std::move(args)) {
    for (auto& s : strings) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> strings;
  std::vector<char*> ptrs;
};

int run_cli(std::vector<std::string> args, std::string* out_text = nullptr,
            std::string* err_text = nullptr) {
  args.insert(args.begin(), "nvmsim");
  Argv a(std::move(args));
  std::ostringstream out;
  std::ostringstream err;
  const int rc = cli_main(a.argc(), a.argv(), out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return rc;
}

// ---------- option parser -------------------------------------------------

TEST(Options, PositionalAndKeyValue) {
  Argv a({"prog", "run", "xsbench", "--threads", "24", "--flag"});
  const auto opt = Options::parse(a.argc(), a.argv(), 1);
  ASSERT_EQ(opt.positional().size(), 2u);
  EXPECT_EQ(opt.positional()[0], "run");
  EXPECT_EQ(opt.get_int("threads", 0), 24);
  EXPECT_TRUE(opt.has("flag"));
  EXPECT_EQ(opt.get("flag", ""), "true");
}

TEST(Options, TypedAccessorsAndDefaults) {
  Argv a({"prog", "--scale", "2.5"});
  const auto opt = Options::parse(a.argc(), a.argv(), 1);
  EXPECT_DOUBLE_EQ(opt.get_double("scale", 1.0), 2.5);
  EXPECT_EQ(opt.get_int("missing", 7), 7);
  EXPECT_EQ(opt.get("missing", "x"), "x");
}

TEST(Options, RejectsMalformedNumbers) {
  Argv a({"prog", "--threads", "many"});
  const auto opt = Options::parse(a.argc(), a.argv(), 1);
  EXPECT_THROW(opt.get_int("threads", 0), ConfigError);
}

TEST(Options, RejectsTrailingGarbage) {
  // std::strtol/strtod stop at the first bad byte; the checked parsers
  // must treat a partial match as an error, not a silent truncation.
  Argv a({"prog", "--threads", "10xyz", "--scale", "1.5q"});
  const auto opt = Options::parse(a.argc(), a.argv(), 1);
  EXPECT_THROW(opt.get_int("threads", 0), ConfigError);
  EXPECT_THROW(opt.get_double("scale", 1.0), ConfigError);
}

TEST(Options, FromMapMatchesParse) {
  const auto opt = Options::from_map(
      {{"threads", "24"}, {"flag", "true"}}, {"xsbench"});
  ASSERT_EQ(opt.positional().size(), 1u);
  EXPECT_EQ(opt.positional()[0], "xsbench");
  EXPECT_EQ(opt.get_int("threads", 0), 24);
  EXPECT_TRUE(opt.has("flag"));
}

TEST(Options, TracksUnusedKeys) {
  Argv a({"prog", "--used", "1", "--typo", "2"});
  const auto opt = Options::parse(a.argc(), a.argv(), 1);
  (void)opt.get_int("used", 0);
  const auto unused = opt.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

// ---------- checked scalar parsers (cli/parse.hpp) ------------------------

TEST(Parse, LongIsTotal) {
  EXPECT_EQ(parse_long("12"), 12);
  EXPECT_EQ(parse_long("-3"), -3);
  EXPECT_EQ(parse_long("0"), 0);
  for (const char* bad :
       {"", " 12", "12 ", "12x", "x12", "1.5", "999999999999999999999"}) {
    EXPECT_FALSE(parse_long(bad).has_value()) << bad;
  }
}

TEST(Parse, DoubleIsTotal) {
  EXPECT_DOUBLE_EQ(parse_double("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(parse_double("-2e3").value(), -2000.0);
  for (const char* bad : {"", " 1", "1.5q", "q1.5", "inf", "nan", "1e999"}) {
    EXPECT_FALSE(parse_double(bad).has_value()) << bad;
  }
}

TEST(Parse, IntCsvReportsTheBadCell) {
  std::string why;
  const auto ok = parse_int_csv("12,24,36", 1, &why);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, (std::vector<int>{12, 24, 36}));
  struct Case {
    const char* input;
    const char* reason;
  };
  for (const Case& c : {Case{"12,abc", "'abc' is not an integer"},
                        Case{"12,,24", "empty cell"},
                        Case{"0", "below the minimum"},
                        Case{"-3", "below the minimum"},
                        Case{"12,", "trailing comma"},
                        Case{"", "empty list"}}) {
    EXPECT_FALSE(parse_int_csv(c.input, 1, &why).has_value()) << c.input;
    EXPECT_NE(why.find(c.reason), std::string::npos)
        << c.input << " -> " << why;
  }
}

TEST(Parse, BudgetSpecHandlesSuffixesAndRejectsGarbage) {
  const std::uint64_t cap = 1000;
  EXPECT_EQ(parse_budget_spec("35%", cap, nullptr).value(), 350u);
  EXPECT_EQ(parse_budget_spec("512", cap, nullptr).value(), 512u);
  EXPECT_EQ(parse_budget_spec("10KiB", cap, nullptr).value(), 10 * KiB);
  EXPECT_EQ(parse_budget_spec("2MiB", cap, nullptr).value(), 2 * MiB);
  EXPECT_EQ(parse_budget_spec("1GiB", cap, nullptr).value(), 1 * GiB);
  std::string why;
  for (const char* bad :
       {"10xyz", "1.5q", "-1", "0%", "101%", "inf", "nan", "", "KiB"}) {
    EXPECT_FALSE(parse_budget_spec(bad, cap, &why).has_value()) << bad;
    EXPECT_FALSE(why.empty()) << bad;
  }
}

// ---------- driver ----------------------------------------------------------

TEST(Cli, ListShowsAllApps) {
  std::string out;
  EXPECT_EQ(run_cli({"list"}, &out), 0);
  for (const char* app : {"hacc", "laghos", "scalapack", "xsbench", "hypre",
                          "superlu", "boxlib", "ft"}) {
    EXPECT_NE(out.find(app), std::string::npos) << app;
  }
}

TEST(Cli, DevicesShowsCalibration) {
  std::string out;
  EXPECT_EQ(run_cli({"devices"}, &out), 0);
  EXPECT_NE(out.find("304.0 ns"), std::string::npos);
  EXPECT_NE(out.find("39.00 GB/s"), std::string::npos);
}

TEST(Cli, RunProducesReport) {
  std::string out;
  EXPECT_EQ(run_cli({"run", "hacc", "--threads", "12"}, &out), 0);
  EXPECT_NE(out.find("hacc"), std::string::npos);
  EXPECT_NE(out.find("runtime"), std::string::npos);
  EXPECT_NE(out.find("uncached-nvm"), std::string::npos);
}

TEST(Cli, RunWritesTraceCsv) {
  const std::string path = "/tmp/nvms_cli_test_trace.csv";
  std::remove(path.c_str());
  std::string out;
  EXPECT_EQ(run_cli({"run", "laghos", "--trace", path}, &out), 0);
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[80] = {};
  ASSERT_NE(std::fgets(header, sizeof header, f), nullptr);
  EXPECT_NE(std::string(header).find("t_s,dram_read_gbs"),
            std::string::npos);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Cli, SweepRunsMatrix) {
  std::string out;
  EXPECT_EQ(run_cli({"sweep", "hacc", "--threads", "12,36", "--modes",
                     "dram-only,uncached-nvm"},
                    &out),
            0);
  // header + separator + 4 rows + blank + executor summary
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 8);
  EXPECT_NE(out.find("executor: 4 task(s)"), std::string::npos);
}

TEST(Cli, SweepJobsKeepsCsvByteIdentical) {
  std::string serial, parallel, err;
  EXPECT_EQ(run_cli({"sweep", "xsbench", "--threads", "12,36", "--modes",
                     "dram-only,uncached-nvm", "--jobs", "1", "--csv"},
                    &serial, &err),
            0);
  // in CSV mode the executor summary goes to stderr, stdout stays pure
  EXPECT_EQ(serial.find("executor:"), std::string::npos);
  EXPECT_NE(err.find("executor:"), std::string::npos);
  EXPECT_EQ(run_cli({"sweep", "xsbench", "--threads", "12,36", "--modes",
                     "dram-only,uncached-nvm", "--jobs", "3", "--csv"},
                    &parallel),
            0);
  EXPECT_EQ(serial, parallel);
}

TEST(Cli, SweepReportsSkippedConfigurations) {
  std::string out, err;
  EXPECT_EQ(run_cli({"sweep", "hypre", "--threads", "36", "--modes",
                     "dram-only,cached-nvm", "--scale", "3.0"},
                    &out, &err),
            0);
  EXPECT_NE(err.find("skipped 1 configuration"), std::string::npos);
  EXPECT_NE(err.find("dram-only threads=36"), std::string::npos);
}

TEST(Cli, SweepWritesStatsCsv) {
  const std::string path = "/tmp/nvms_cli_test_stats.csv";
  std::remove(path.c_str());
  std::string out;
  EXPECT_EQ(run_cli({"sweep", "hacc", "--threads", "12", "--modes",
                     "dram-only", "--jobs", "2", "--stats", path},
                    &out),
            0);
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[80] = {};
  ASSERT_NE(std::fgets(header, sizeof header, f), nullptr);
  EXPECT_NE(std::string(header).find("task,label,worker,queue_wait_s"),
            std::string::npos);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Cli, SweepRejectsNegativeJobs) {
  std::string err;
  // Bad input is a usage error (exit 2) since the serve/CLI hardening pass.
  EXPECT_EQ(run_cli({"sweep", "hacc", "--jobs", "-2"}, nullptr, &err), 2);
  EXPECT_NE(err.find("--jobs"), std::string::npos);
}

namespace {
std::string slurp(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}
}  // namespace

TEST(Cli, RunWritesChromeTraceAndMetrics) {
  const std::string trace = "/tmp/nvms_cli_obs_trace.json";
  const std::string metrics = "/tmp/nvms_cli_obs_metrics.csv";
  std::remove(trace.c_str());
  std::remove(metrics.c_str());
  std::string out;
  EXPECT_EQ(run_cli({"run", "hacc", "--threads", "12", "--trace-out", trace,
                     "--metrics-out", metrics},
                    &out),
            0);
  const std::string json = slurp(trace);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"resolve\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"device\""), std::string::npos);
  EXPECT_NE(json.find("wpq.util"), std::string::npos);
  const std::string csv = slurp(metrics);
  EXPECT_EQ(csv.rfind("part,metric,labels,t_s,value", 0), 0u);
  EXPECT_NE(csv.find("throttle.read"), std::string::npos);
  std::remove(trace.c_str());
  std::remove(metrics.c_str());
}

TEST(Cli, SweepTraceOutIsByteIdenticalAcrossJobs) {
  const std::string t1 = "/tmp/nvms_cli_obs_sweep1.json";
  const std::string t4 = "/tmp/nvms_cli_obs_sweep4.json";
  std::remove(t1.c_str());
  std::remove(t4.c_str());
  EXPECT_EQ(run_cli({"sweep", "hacc", "--threads", "12,24", "--modes",
                     "dram-only,uncached-nvm", "--jobs", "1", "--trace-out",
                     t1}),
            0);
  EXPECT_EQ(run_cli({"sweep", "hacc", "--threads", "12,24", "--modes",
                     "dram-only,uncached-nvm", "--jobs", "4", "--trace-out",
                     t4}),
            0);
  const std::string serial = slurp(t1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, slurp(t4));
  // one merged part per grid cell
  EXPECT_NE(serial.find("\"name\":\"dram-only/12/1\""), std::string::npos);
  EXPECT_NE(serial.find("\"name\":\"uncached-nvm/24/1\""), std::string::npos);
  std::remove(t1.c_str());
  std::remove(t4.c_str());
}

TEST(Cli, InspectSummarizesSpansAndMetrics) {
  std::string out;
  EXPECT_EQ(run_cli({"inspect", "hacc", "--threads", "12"}, &out), 0);
  EXPECT_NE(out.find("span(s)"), std::string::npos);
  EXPECT_NE(out.find("category"), std::string::npos);
  EXPECT_NE(out.find("resolve"), std::string::npos);
  EXPECT_NE(out.find("wpq.util"), std::string::npos);
  EXPECT_NE(out.find("gauge"), std::string::npos);

  std::string err;
  EXPECT_EQ(run_cli({"inspect"}, nullptr, &err), 2);
  EXPECT_NE(err.find("missing application"), std::string::npos);
}

TEST(Cli, InspectHumanIncludesAttributionVerdict) {
  std::string out;
  EXPECT_EQ(run_cli({"inspect", "ft", "--threads", "12", "--format",
                     "human"},
                    &out),
            0);
  EXPECT_NE(out.find("(score "), std::string::npos);  // verdict headline
  EXPECT_NE(out.find("evidence:"), std::string::npos);
}

TEST(Cli, InspectJsonIsByteStableWithSortedKeys) {
  std::string a, b;
  EXPECT_EQ(
      run_cli({"inspect", "xsbench", "--threads", "12", "--format", "json"},
              &a),
      0);
  EXPECT_EQ(
      run_cli({"inspect", "xsbench", "--threads", "12", "--format", "json"},
              &b),
      0);
  EXPECT_EQ(a, b);  // byte-stable for scripting
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.front(), '{');
  for (const char* key :
       {"\"app\"", "\"mode\"", "\"profile\"", "\"spans\"", "\"metrics\"",
        "\"runtime_s\"", "\"verdict\""}) {
    EXPECT_NE(a.find(key), std::string::npos) << key;
  }
  // Top-level keys arrive recursively sorted: "app" < "metric_count" <
  // "metrics" < "mode" < ... in document order.
  EXPECT_LT(a.find("\"app\""), a.find("\"metric_count\""));
  EXPECT_LT(a.find("\"metric_count\""), a.find("\"mode\""));

  std::string err;
  EXPECT_EQ(run_cli({"inspect", "xsbench", "--format", "yaml"}, nullptr,
                    &err),
            2);
  EXPECT_NE(err.find("unknown --format"), std::string::npos);
}

TEST(Cli, ExplainClassifiesAndDiffCompares) {
  std::string out;
  EXPECT_EQ(run_cli({"explain", "ft", "--mode", "uncached-nvm", "--scale",
                     "0.25"},
                    &out),
            0);
  EXPECT_NE(out.find("wpq-saturated"), std::string::npos);
  EXPECT_NE(out.find("evidence"), std::string::npos);

  std::string diff_out;
  EXPECT_EQ(run_cli({"diff", "ft", "ft", "--mode-a", "cached-nvm",
                     "--mode-b", "uncached-nvm", "--scale", "0.25"},
                    &diff_out),
            0);
  EXPECT_NE(diff_out.find("cached-nvm"), std::string::npos);
  EXPECT_NE(diff_out.find("uncached-nvm"), std::string::npos);

  std::string err;
  EXPECT_EQ(run_cli({"explain", "no-such-app"}, nullptr, &err), 2);
  EXPECT_EQ(run_cli({"diff", "ft"}, nullptr, &err), 2);
}

TEST(Cli, ProfileEmitsPlan) {
  std::string out;
  EXPECT_EQ(run_cli({"profile", "scalapack", "--budget", "35"}, &out), 0);
  EXPECT_NE(out.find("write-aware plan"), std::string::npos);
  EXPECT_NE(out.find("mat_c"), std::string::npos);
}

TEST(Cli, ErrorsAreReported) {
  std::string err;
  EXPECT_EQ(run_cli({"frobnicate"}, nullptr, &err), 2);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
  EXPECT_EQ(run_cli({"run"}, nullptr, &err), 2);
  // An unknown app is a ConfigError — bad input, so a usage error (2).
  EXPECT_EQ(run_cli({"run", "nope"}, nullptr, &err), 2);
  EXPECT_EQ(run_cli({"run", "hacc", "--mode", "weird"}, nullptr, &err), 2);
  EXPECT_EQ(run_cli({}, nullptr, &err), 2);  // usage
}

// The negative-path table: every subcommand driven with malformed input
// must exit 2 with a diagnostic on stderr — and must never terminate the
// process via an uncaught exception (the `sweep --threads 12,abc` row is
// the exact reproducer that used to throw std::invalid_argument straight
// through cli_main; under nvmsimd that was a daemon-killer).
TEST(Cli, MalformedInputsAreUsageErrorsAcrossAllCommands) {
  struct Case {
    std::vector<std::string> args;
    const char* diagnostic;  ///< expected substring on stderr
  };
  const std::vector<Case> cases = {
      {{"sweep", "hacc", "--threads", "12,abc"}, "not an integer"},
      {{"sweep", "hacc", "--threads", "12,,24"}, "empty cell"},
      {{"sweep", "hacc", "--threads", "0"}, "below the minimum"},
      {{"sweep", "hacc", "--threads", "-3,12"}, "below the minimum"},
      {{"sweep", "hacc", "--threads", "12,"}, "trailing comma"},
      {{"sweep", "hacc", "--modes", "weird"}, "unknown mode"},
      {{"sweep", "hacc", "--jobs", "2x"}, "--jobs"},
      {{"sweep", "hacc", "--resolve-cache", "sometimes"}, "--resolve-cache"},
      {{"run", "hacc", "--threads", "1.5"}, "--threads"},
      {{"run", "hacc", "--threads", "10xyz"}, "--threads"},
      {{"run", "hacc", "--scale", "1.5q"}, "--scale"},
      {{"run", "hacc", "--iters", "ten"}, "--iters"},
      {{"run", "hacc", "--mode", "bogus"}, "unknown mode"},
      {{"run", "hacc", "--numa", "diagonal"}, "--numa"},
      {{"inspect", "hacc", "--format", "yaml"}, "--format"},
      {{"inspect", "hacc", "--mode", "bogus"}, "unknown mode"},
      {{"explain", "no-such-app"}, "neither"},
      {{"explain", "ft", "--scale", "0.25", "--format", "xml"}, "--format"},
      {{"diff", "ft"}, "need two"},
      // --scale 0.25 keeps the (pre-budget-check) recording run cheap.
      {{"optimize", "ft", "--scale", "0.25", "--budget", "10xyz"}, "--budget"},
      {{"optimize", "ft", "--scale", "0.25", "--budget", "1.5q"}, "--budget"},
      {{"optimize", "ft", "--scale", "0.25", "--budget", "-5"}, "--budget"},
      {{"optimize", "ft", "--scale", "0.25", "--budget", "200%"}, "--budget"},
      {{"optimize", "hacc", "--mode", "bogus"}, "unknown mode"},
      {{"profile", "nope", "--budget", "35"}, "unknown app"},
      {{"profile", "hacc", "--budget", "0"}, "--budget"},
      {{"record", "hacc"}, "--out"},
      {{"replay"}, "missing trace file"},
  };
  for (const Case& c : cases) {
    std::string label;
    for (const auto& a : c.args) label += a + " ";
    std::string err;
    // run_cli reaching this EXPECT at all proves no exception escaped.
    EXPECT_EQ(run_cli(c.args, nullptr, &err), 2) << label;
    EXPECT_NE(err.find(c.diagnostic), std::string::npos)
        << label << "stderr was: " << err;
  }
}

TEST(Cli, WarnsOnUnusedOptions) {
  std::string err;
  EXPECT_EQ(run_cli({"list", "--bogus", "1"}, nullptr, &err), 0);
  EXPECT_NE(err.find("unused option --bogus"), std::string::npos);
}

TEST(Cli, RemoteNvmIsSlower) {
  std::string local_out;
  std::string remote_out;
  EXPECT_EQ(run_cli({"run", "xsbench"}, &local_out), 0);
  EXPECT_EQ(run_cli({"run", "xsbench", "--remote-nvm"}, &remote_out), 0);
  auto fom = [](const std::string& s) {
    const auto pos = s.find("FoM");
    return std::stod(s.substr(pos + 3));
  };
  EXPECT_GT(fom(local_out), fom(remote_out));
}

TEST(Cli, RecordAndReplayRoundTrip) {
  const std::string path = "/tmp/nvms_cli_test.trace";
  std::remove(path.c_str());
  std::string out;
  EXPECT_EQ(run_cli({"record", "hacc", "--out", path, "--threads", "12"},
                    &out),
            0);
  EXPECT_NE(out.find("recorded"), std::string::npos);
  std::string replay_out;
  EXPECT_EQ(run_cli({"replay", path, "--mode", "dram-only"}, &replay_out), 0);
  EXPECT_NE(replay_out.find("replayed runtime"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, ReplayWhatIfChangesOutcome) {
  const std::string path = "/tmp/nvms_cli_whatif.trace";
  std::remove(path.c_str());
  EXPECT_EQ(run_cli({"record", "ft", "--out", path}), 0);
  std::string base;
  std::string boosted;
  EXPECT_EQ(run_cli({"replay", path}, &base), 0);
  EXPECT_EQ(run_cli({"replay", path, "--nvm-write-bw", "26"}, &boosted), 0);
  EXPECT_NE(base, boosted);
  std::remove(path.c_str());
}

TEST(Cli, RecordRequiresOutFile) {
  std::string err;
  EXPECT_EQ(run_cli({"record", "hacc"}, nullptr, &err), 2);
  EXPECT_NE(err.find("--out"), std::string::npos);
  EXPECT_EQ(run_cli({"replay", "/nonexistent/file"}, nullptr, &err), 1);
}

}  // namespace
}  // namespace nvms
